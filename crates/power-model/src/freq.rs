//! Voltage-to-frequency model (adaptive clocking).
//!
//! Under HCAPP the global controller may change the supply voltage at any
//! time; adaptive clocking (§3.5, Keller \[15\]) keeps every clocked node
//! functional by deriving its clock from the instantaneous local voltage.
//! We model the achievable frequency with the α-power law at α ≈ 1:
//!
//! ```text
//! f(V) = f_max · (V − V_th) / (V_fmax − V_th),   clamped to [f_min, f_max]
//! ```
//!
//! This threshold-linear form captures the property the paper's results rely
//! on: near the operating point, a modest voltage increase buys a
//! proportionally larger frequency increase (because `V − V_th` is much
//! smaller than `V`), which is where HCAPP's speedup from power shifting
//! comes from.

use hcapp_sim_core::units::{Hertz, Volt};

/// Threshold-linear frequency model with clamping.
///
/// ```
/// use hcapp_power_model::FrequencyModel;
/// use hcapp_sim_core::units::{Hertz, Volt};
///
/// // The paper CPU: 2 GHz at 1.25 V, threshold 0.5 V, floor 800 MHz.
/// let f = FrequencyModel::new(
///     Volt::new(0.5), Volt::new(1.25),
///     Hertz::from_mhz(800.0), Hertz::from_ghz(2.0));
/// assert_eq!(f.frequency_at(Volt::new(1.25)), Hertz::from_ghz(2.0));
/// // Near the operating point, +16% voltage buys +33% frequency — the
/// // threshold-linear law behind HCAPP's power-shifting speedups.
/// let slow = f.frequency_at(Volt::new(0.95));
/// let fast = f.frequency_at(Volt::new(1.10));
/// assert!(fast / slow > 1.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyModel {
    /// Device threshold voltage — no switching below this.
    pub v_threshold: Volt,
    /// Voltage at which the maximum frequency is reached; above it, the
    /// clock stays pinned at `f_max` (timing closure limit).
    pub v_fmax: Volt,
    /// Maximum clock frequency (Table 2: 2 GHz CPU, 700 MHz GPU).
    pub f_max: Hertz,
    /// Minimum clock frequency (Table 2: 800 MHz CPU, 100 MHz GPU). The
    /// adaptive clock never drops below this; undervoltage protection in the
    /// local controller handles anything lower.
    pub f_min: Hertz,
}

impl FrequencyModel {
    /// Create a model, validating parameter sanity.
    ///
    /// # Panics
    /// Panics if the voltage or frequency ranges are inverted.
    pub fn new(v_threshold: Volt, v_fmax: Volt, f_min: Hertz, f_max: Hertz) -> Self {
        assert!(
            v_threshold.value() < v_fmax.value(),
            "v_threshold {v_threshold} must be below v_fmax {v_fmax}"
        );
        assert!(
            f_min.value() <= f_max.value(),
            "f_min {f_min} must not exceed f_max {f_max}"
        );
        assert!(f_min.value() >= 0.0, "negative f_min");
        FrequencyModel {
            v_threshold,
            v_fmax,
            f_max,
            f_min,
        }
    }

    /// The frequency the adaptive clock produces at supply voltage `v`.
    #[inline]
    pub fn frequency_at(&self, v: Volt) -> Hertz {
        let span = self.v_fmax - self.v_threshold;
        let x = (v - self.v_threshold) / span; // dimensionless fraction
        let f = self.f_max * x.clamp(0.0, 1.0);
        f.max(self.f_min).min(self.f_max)
    }

    /// The lowest voltage at which `f` is achievable (inverse of
    /// [`Self::frequency_at`] on the linear segment). Clamps to the model's
    /// valid frequency range first.
    #[inline]
    pub fn voltage_for(&self, f: Hertz) -> Volt {
        let f = f.max(self.f_min).min(self.f_max);
        let x = f / self.f_max;
        self.v_threshold + (self.v_fmax - self.v_threshold) * x
    }

    /// Frequency at `v` as a fraction of `f_max` (used by IPC models and
    /// speedup accounting).
    #[inline]
    pub fn speed_fraction(&self, v: Volt) -> f64 {
        self.frequency_at(v) / self.f_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn cpu_model() -> FrequencyModel {
        // CPU-like: 2 GHz at 1.25 V, threshold 0.5 V, floor 800 MHz.
        FrequencyModel::new(
            Volt::new(0.5),
            Volt::new(1.25),
            Hertz::from_mhz(800.0),
            Hertz::from_ghz(2.0),
        )
    }

    #[test]
    fn endpoints() {
        let m = cpu_model();
        assert_close!(m.frequency_at(Volt::new(1.25)).as_ghz(), 2.0, 1e-12);
        // Below threshold the clock floors at f_min.
        assert_close!(m.frequency_at(Volt::new(0.3)).as_ghz(), 0.8, 1e-12);
        // Above v_fmax the clock pins at f_max.
        assert_close!(m.frequency_at(Volt::new(1.5)).as_ghz(), 2.0, 1e-12);
    }

    #[test]
    fn linear_mid_range() {
        let m = cpu_model();
        // At V = 0.875 (midpoint of threshold..v_fmax) f = 1 GHz.
        assert_close!(m.frequency_at(Volt::new(0.875)).as_ghz(), 1.0, 1e-12);
    }

    #[test]
    fn threshold_sensitivity_beats_proportionality() {
        // The key speedup mechanism: +16% voltage gives +33% frequency here.
        let m = cpu_model();
        let f1 = m.frequency_at(Volt::new(0.95));
        let f2 = m.frequency_at(Volt::new(1.10));
        let v_ratio: f64 = 1.10 / 0.95;
        let f_ratio = f2 / f1;
        assert!(
            f_ratio > v_ratio,
            "f ratio {f_ratio} should exceed V ratio {v_ratio}"
        );
    }

    #[test]
    fn inverse_roundtrip() {
        let m = cpu_model();
        for f_ghz in [0.8, 1.0, 1.5, 2.0] {
            let f = Hertz::from_ghz(f_ghz);
            let v = m.voltage_for(f);
            assert_close!(m.frequency_at(v).as_ghz(), f_ghz, 1e-9);
        }
    }

    #[test]
    fn inverse_clamps() {
        let m = cpu_model();
        let v = m.voltage_for(Hertz::from_ghz(5.0));
        assert_close!(v.value(), 1.25, 1e-12);
    }

    #[test]
    fn monotone_nondecreasing() {
        let m = cpu_model();
        let mut prev = 0.0;
        for i in 0..200 {
            let v = Volt::new(0.2 + i as f64 * 0.01);
            let f = m.frequency_at(v).value();
            assert!(f >= prev, "frequency decreased at {v}");
            prev = f;
        }
    }

    #[test]
    fn speed_fraction() {
        let m = cpu_model();
        assert_close!(m.speed_fraction(Volt::new(1.25)), 1.0, 1e-12);
        assert_close!(m.speed_fraction(Volt::new(0.875)), 0.5, 1e-12);
    }

    #[test]
    #[should_panic(expected = "v_threshold")]
    fn inverted_voltage_range_panics() {
        let _ = FrequencyModel::new(
            Volt::new(1.3),
            Volt::new(1.0),
            Hertz::from_mhz(100.0),
            Hertz::from_mhz(700.0),
        );
    }

    #[test]
    #[should_panic(expected = "f_min")]
    fn inverted_frequency_range_panics() {
        let _ = FrequencyModel::new(
            Volt::new(0.5),
            Volt::new(1.0),
            Hertz::from_ghz(2.0),
            Hertz::from_mhz(700.0),
        );
    }
}

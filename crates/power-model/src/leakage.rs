//! Static (leakage) power.
//!
//! Leakage grows superlinearly with supply voltage; over the narrow voltage
//! ranges the domains operate in, a quadratic `P_leak = k·V²` is an adequate
//! fit (McPAT itself uses technology-calibrated curves that are locally
//! near-quadratic). An optional temperature coefficient supports the thermal
//! extension.

use hcapp_sim_core::units::{Volt, Watt};

/// Quadratic-in-voltage leakage model with optional temperature dependence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Leakage coefficient in W/V².
    pub k: f64,
    /// Fractional leakage increase per kelvin above the reference
    /// temperature (typical silicon: ~1%/K). Zero disables the dependence.
    pub temp_coeff_per_k: f64,
    /// Reference temperature in kelvin for the coefficient above.
    pub t_ref_kelvin: f64,
}

impl LeakageModel {
    /// Temperature-independent leakage with coefficient `k` (W/V²).
    ///
    /// # Panics
    /// Panics if `k` is negative or non-finite.
    pub fn new(k: f64) -> Self {
        assert!(k.is_finite() && k >= 0.0, "invalid leakage coefficient {k}");
        LeakageModel {
            k,
            temp_coeff_per_k: 0.0,
            t_ref_kelvin: 330.0,
        }
    }

    /// Calibrate from a design point: leakage power `p_leak` at `v_design`.
    pub fn from_design_point(p_leak: Watt, v_design: Volt) -> Self {
        let denom = v_design.value() * v_design.value();
        assert!(denom > 0.0, "degenerate leakage design point");
        LeakageModel::new(p_leak.value() / denom)
    }

    /// Enable temperature dependence (builder style).
    pub fn with_temperature(mut self, coeff_per_k: f64, t_ref_kelvin: f64) -> Self {
        assert!(coeff_per_k >= 0.0 && t_ref_kelvin > 0.0);
        self.temp_coeff_per_k = coeff_per_k;
        self.t_ref_kelvin = t_ref_kelvin;
        self
    }

    /// Leakage power at voltage `v` and the reference temperature.
    #[inline]
    pub fn power(&self, v: Volt) -> Watt {
        Watt::new(self.k * v.value() * v.value())
    }

    /// Leakage power at voltage `v` and temperature `t_kelvin`.
    #[inline]
    pub fn power_at_temp(&self, v: Volt, t_kelvin: f64) -> Watt {
        let scale = 1.0 + self.temp_coeff_per_k * (t_kelvin - self.t_ref_kelvin);
        self.power(v) * scale.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn quadratic_scaling() {
        let m = LeakageModel::new(2.0);
        assert_close!(m.power(Volt::new(1.0)).value(), 2.0, 1e-12);
        assert_close!(m.power(Volt::new(2.0)).value(), 8.0, 1e-12);
    }

    #[test]
    fn design_point() {
        let m = LeakageModel::from_design_point(Watt::new(3.0), Volt::new(1.2));
        assert_close!(m.power(Volt::new(1.2)).value(), 3.0, 1e-12);
    }

    #[test]
    fn temperature_dependence() {
        let m = LeakageModel::new(1.0).with_temperature(0.01, 330.0);
        let cold = m.power_at_temp(Volt::new(1.0), 330.0).value();
        let hot = m.power_at_temp(Volt::new(1.0), 340.0).value();
        assert_close!(cold, 1.0, 1e-12);
        assert_close!(hot, 1.1, 1e-12);
    }

    #[test]
    fn temperature_scale_never_negative() {
        let m = LeakageModel::new(1.0).with_temperature(0.01, 330.0);
        let p = m.power_at_temp(Volt::new(1.0), 0.0).value();
        assert!(p >= 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid leakage")]
    fn negative_k_panics() {
        let _ = LeakageModel::new(-0.1);
    }
}

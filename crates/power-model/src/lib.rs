//! Voltage/frequency/power models for chiplet components.
//!
//! The paper's component simulators (Sniper+McPAT for the CPU, GPGPU-Sim +
//! GPUWattch for the GPU, a LUT model for the SHA accelerator) all reduce, at
//! the interface HCAPP consumes, to three relationships per component:
//!
//! 1. **Frequency from voltage** (adaptive clocking, §3.5 / Keller \[15\]):
//!    modelled as threshold-linear `f ∝ (V − V_th)` — the α≈1 alpha-power
//!    law — in [`freq::FrequencyModel`].
//! 2. **Power from voltage, frequency and activity**: the classic
//!    `P_dyn = C_eff·V²·f·a` switching model in [`dynamic::DynamicPower`]
//!    plus a `P_leak ∝ V²` leakage term in [`leakage::LeakageModel`].
//!    Together these give the approximately *cubic* power-voltage
//!    relationship that motivates the cube-root error term of the paper's
//!    Eq. 1.
//! 3. **Energy over time**: [`energy::EnergyAccount`] integrates power.
//!
//! [`model::ComponentPowerModel`] composes the first two into the single
//! object the CPU/GPU/accelerator simulators use. [`dvfs`] adds discrete
//! operating points (used by quantized/firmware-style control), and
//! [`thermal`] an RC thermal model for the local-controller thermal clamp
//! extension (§3.3; off by default because the paper assumes the power cap
//! sits below the TDP).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod breakdown;
pub mod dvfs;
pub mod dynamic;
pub mod energy;
pub mod freq;
pub mod leakage;
pub mod memory;
pub mod model;
pub mod thermal;

pub use breakdown::PowerBreakdown;
pub use dvfs::OperatingPointTable;
pub use dynamic::DynamicPower;
pub use energy::EnergyAccount;
pub use freq::FrequencyModel;
pub use leakage::LeakageModel;
pub use memory::MemoryStack;
pub use model::ComponentPowerModel;
pub use thermal::ThermalModel;

//! Memory-stack power model.
//!
//! §3.2: "Certain subcomponents, such as memory, need a constant voltage" —
//! their domain controllers run in [`DomainMode::Fixed`] and ignore the
//! global voltage entirely. The power model for such a stack (DRAM/HBM on
//! the interposer) is simple but real: a static floor (refresh, PLLs,
//! peripheral logic) plus a traffic-proportional dynamic term. Performance
//! is scheme-independent by construction — the stack always runs at its
//! fixed voltage — which is exactly why the paper's Eq. 3 speedups cover
//! only the compute components.
//!
//! [`DomainMode::Fixed`]: ../../hcapp/controller/domain/enum.DomainMode.html

use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Volt, Watt};

/// A fixed-voltage memory stack on the interposer.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryStack {
    /// The stack's required constant voltage.
    pub voltage: Volt,
    /// Static power (refresh, periphery) at the fixed voltage.
    pub static_power: Watt,
    /// Dynamic power at full traffic.
    pub peak_dynamic: Watt,
    /// Current traffic utilization in `[0, 1]` (set by the package from the
    /// compute domains' memory intensity).
    traffic: f64,
    /// Serviced traffic integral (GB-equivalents, arbitrary units) — the
    /// stack's "work", constant-rate under any scheme at fixed traffic.
    serviced: f64,
    /// Peak bandwidth in arbitrary units per second at full traffic.
    pub peak_bandwidth: f64,
}

impl MemoryStack {
    /// An HBM-ish default: 1.2 V, 3 W static, 6 W peak dynamic.
    pub fn hbm_default() -> Self {
        MemoryStack::new(Volt::new(1.2), Watt::new(3.0), Watt::new(6.0), 100.0)
    }

    /// Create a stack.
    ///
    /// # Panics
    /// Panics on non-positive voltage or negative powers.
    pub fn new(voltage: Volt, static_power: Watt, peak_dynamic: Watt, peak_bandwidth: f64) -> Self {
        assert!(voltage.value() > 0.0, "non-positive memory voltage");
        assert!(static_power.value() >= 0.0 && peak_dynamic.value() >= 0.0);
        assert!(peak_bandwidth > 0.0);
        MemoryStack {
            voltage,
            static_power,
            peak_dynamic,
            traffic: 0.0,
            serviced: 0.0,
            peak_bandwidth,
        }
    }

    /// Set the traffic utilization for the next step (clamped to `[0, 1]`).
    pub fn set_traffic(&mut self, traffic: f64) {
        self.traffic = traffic.clamp(0.0, 1.0);
    }

    /// Current traffic utilization.
    pub fn traffic(&self) -> f64 {
        self.traffic
    }

    /// Advance one tick; returns the stack's power. The supplied voltage is
    /// ignored beyond a sanity clamp — this *is* the fixed-voltage domain.
    pub fn step(&mut self, dt: SimDuration) -> Watt {
        self.serviced += self.traffic * self.peak_bandwidth * dt.as_secs_f64();
        self.static_power + self.peak_dynamic * self.traffic
    }

    /// Serviced traffic so far (work metric; rate is scheme-independent).
    pub fn work_done(&self) -> f64 {
        self.serviced
    }
}

impl hcapp_sim_core::state::Snapshot for MemoryStack {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.f64("mem.traffic", self.traffic);
        w.f64("mem.serviced", self.serviced);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.traffic = r.f64("mem.traffic")?;
        self.serviced = r.f64("mem.serviced")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn idle_stack_draws_static_floor() {
        let mut m = MemoryStack::hbm_default();
        let p = m.step(SimDuration::from_micros(1));
        assert_close!(p.value(), 3.0, 1e-12);
        assert_eq!(m.work_done(), 0.0);
    }

    #[test]
    fn traffic_scales_dynamic_power_and_work() {
        let mut m = MemoryStack::hbm_default();
        m.set_traffic(0.5);
        let p = m.step(SimDuration::from_millis(1));
        assert_close!(p.value(), 3.0 + 3.0, 1e-12);
        assert_close!(m.work_done(), 0.5 * 100.0 * 1e-3, 1e-12);
    }

    #[test]
    fn traffic_clamped() {
        let mut m = MemoryStack::hbm_default();
        m.set_traffic(7.0);
        assert_eq!(m.traffic(), 1.0);
        m.set_traffic(-1.0);
        assert_eq!(m.traffic(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-positive memory voltage")]
    fn zero_voltage_panics() {
        let _ = MemoryStack::new(Volt::ZERO, Watt::new(1.0), Watt::new(1.0), 1.0);
    }
}

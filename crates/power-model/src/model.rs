//! Composite per-block power model.
//!
//! [`ComponentPowerModel`] bundles the frequency, dynamic-power and leakage
//! models into the single object the CPU core / GPU SM / accelerator
//! simulators carry. It answers the two questions the simulators ask every
//! tick: *"at this local voltage, how fast do I run?"* and *"…and how much
//! power do I draw at my current activity?"*.

use crate::dynamic::DynamicPower;
use crate::freq::FrequencyModel;
use crate::leakage::LeakageModel;
use hcapp_sim_core::units::{Hertz, Volt, Watt};

/// Frequency + dynamic + leakage model for one block.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentPowerModel {
    /// Voltage→frequency relationship (adaptive clocking).
    pub freq: FrequencyModel,
    /// Switching power model.
    pub dynamic: DynamicPower,
    /// Leakage model.
    pub leakage: LeakageModel,
}

impl ComponentPowerModel {
    /// Compose a model from its three parts.
    pub fn new(freq: FrequencyModel, dynamic: DynamicPower, leakage: LeakageModel) -> Self {
        ComponentPowerModel {
            freq,
            dynamic,
            leakage,
        }
    }

    /// Calibrated constructor: the block dissipates `p_peak_dynamic`
    /// (activity 1.0) plus `p_leak` of leakage at its `v_design` /
    /// `f(v_design)` operating point.
    pub fn calibrated(
        freq: FrequencyModel,
        v_design: Volt,
        p_peak_dynamic: Watt,
        p_leak: Watt,
    ) -> Self {
        let f_design = freq.frequency_at(v_design);
        ComponentPowerModel {
            dynamic: DynamicPower::from_design_point(p_peak_dynamic, v_design, f_design),
            leakage: LeakageModel::from_design_point(p_leak, v_design),
            freq,
        }
    }

    /// Clock frequency at local voltage `v`.
    #[inline]
    pub fn frequency(&self, v: Volt) -> Hertz {
        self.freq.frequency_at(v)
    }

    /// Total power (dynamic + leakage) at voltage `v` and activity `a`.
    #[inline]
    pub fn power(&self, v: Volt, activity: f64) -> Watt {
        let f = self.freq.frequency_at(v);
        self.dynamic.power(v, f, activity) + self.leakage.power(v)
    }

    /// Dynamic power only (used by the McPAT/GPUWattch-style breakdowns).
    #[inline]
    pub fn dynamic_power(&self, v: Volt, activity: f64) -> Watt {
        let f = self.freq.frequency_at(v);
        self.dynamic.power(v, f, activity)
    }

    /// Leakage power only.
    #[inline]
    pub fn leakage_power(&self, v: Volt) -> Watt {
        self.leakage.power(v)
    }

    /// The two voltage-only evaluations — clock frequency and leakage
    /// power — bundled so hot loops can compute them once per distinct
    /// voltage and reuse them across units sharing that voltage (the
    /// quantum-stepper kernel's memoization; see DESIGN §6j).
    #[inline]
    pub fn operating_point(&self, v: Volt) -> (Hertz, Watt) {
        (self.freq.frequency_at(v), self.leakage.power(v))
    }

    /// Total power from a precomputed operating point. Bit-identical to
    /// [`Self::power`] whenever `(f, leak) == self.operating_point(v)`:
    /// both evaluate `dynamic(v, f, a) + leak` with the same operands.
    #[inline]
    pub fn power_at(&self, v: Volt, f: Hertz, leak: Watt, activity: f64) -> Watt {
        self.dynamic.power(v, f, activity) + leak
    }

    /// Local sensitivity exponent d(ln P)/d(ln V) at `(v, activity)`,
    /// estimated numerically.
    ///
    /// For the threshold-linear frequency model this sits near 3 in the
    /// middle of the range — the empirical basis for the cube-root error
    /// term in the paper's Eq. 1.
    pub fn voltage_exponent(&self, v: Volt, activity: f64) -> f64 {
        let h = 1e-4;
        let p0 = self.power(Volt::new(v.value() - h), activity).value();
        let p1 = self.power(Volt::new(v.value() + h), activity).value();
        if p0 <= 0.0 || p1 <= 0.0 {
            return 0.0;
        }
        ((p1.ln() - p0.ln()) / ((v.value() + h).ln() - (v.value() - h).ln())).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn model() -> ComponentPowerModel {
        let freq = FrequencyModel::new(
            Volt::new(0.5),
            Volt::new(1.25),
            Hertz::from_mhz(800.0),
            Hertz::from_ghz(2.0),
        );
        ComponentPowerModel::calibrated(freq, Volt::new(1.0), Watt::new(6.0), Watt::new(1.0))
    }

    #[test]
    fn calibration_hits_design_point() {
        let m = model();
        let p = m.power(Volt::new(1.0), 1.0);
        assert_close!(p.value(), 7.0, 1e-9);
        assert_close!(m.dynamic_power(Volt::new(1.0), 1.0).value(), 6.0, 1e-9);
        assert_close!(m.leakage_power(Volt::new(1.0)).value(), 1.0, 1e-9);
    }

    #[test]
    fn idle_power_is_leakage_only() {
        let m = model();
        let p = m.power(Volt::new(1.0), 0.0);
        assert_close!(p.value(), 1.0, 1e-9);
    }

    #[test]
    fn power_monotone_in_voltage() {
        let m = model();
        let mut prev = 0.0;
        for i in 0..100 {
            let v = Volt::new(0.6 + i as f64 * 0.007);
            let p = m.power(v, 0.8).value();
            assert!(p >= prev, "power decreased at {v}");
            prev = p;
        }
    }

    #[test]
    fn near_cubic_exponent_mid_range() {
        let m = model();
        // On the linear frequency segment, P_dyn ∝ V²(V−Vth) gives a local
        // exponent between 2 and 4.5 for mid-range voltages; at V = 1.0 with
        // Vth = 0.5 it is 2 + V/(V−Vth) = 4 for pure dynamic power, pulled
        // down toward 2 by leakage. The cube-root inversion of Eq. 1 is a
        // reasonable middle ground.
        let e = m.voltage_exponent(Volt::new(1.0), 1.0);
        assert!((2.0..=4.5).contains(&e), "exponent {e}");
    }

    #[test]
    fn exponent_degrades_gracefully_at_zero_power() {
        let freq = FrequencyModel::new(
            Volt::new(0.5),
            Volt::new(1.25),
            Hertz::ZERO,
            Hertz::from_ghz(2.0),
        );
        let m = ComponentPowerModel::new(freq, DynamicPower::new(0.0), LeakageModel::new(0.0));
        assert_eq!(m.voltage_exponent(Volt::new(1.0), 1.0), 0.0);
    }
}

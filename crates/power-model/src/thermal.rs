//! Lumped RC thermal model.
//!
//! §3.3 of the paper: local controllers monitor thermal sensors and would
//! reduce local voltage on a thermal violation, but the evaluation assumes
//! the power cap is below the TDP so temperature never constrains the runs.
//! We implement the model anyway (it backs the thermal-clamp extension and
//! an integration test that shows the clamp engaging when the assumption is
//! violated).
//!
//! The model is the standard first-order lumped network:
//!
//! ```text
//! C_th · dT/dt = P − (T − T_amb) / R_th
//! ```
//!
//! stepped with the exact exponential update (unconditionally stable for any
//! tick size).

use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::Watt;

/// First-order thermal RC node.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalModel {
    /// Thermal resistance junction→ambient in K/W.
    pub r_th: f64,
    /// Thermal capacitance in J/K.
    pub c_th: f64,
    /// Ambient temperature in kelvin.
    pub t_ambient: f64,
    /// Current junction temperature in kelvin.
    t_junction: f64,
}

impl ThermalModel {
    /// Create a node at ambient temperature.
    ///
    /// # Panics
    /// Panics on non-positive `r_th`/`c_th`.
    pub fn new(r_th: f64, c_th: f64, t_ambient: f64) -> Self {
        assert!(r_th > 0.0 && c_th > 0.0, "non-positive thermal parameters");
        ThermalModel {
            r_th,
            c_th,
            t_ambient,
            t_junction: t_ambient,
        }
    }

    /// Current junction temperature in kelvin.
    #[inline]
    pub fn temperature(&self) -> f64 {
        self.t_junction
    }

    /// Thermal time constant `R·C` in seconds.
    #[inline]
    pub fn time_constant_secs(&self) -> f64 {
        self.r_th * self.c_th
    }

    /// Steady-state temperature under constant power `p`.
    #[inline]
    pub fn steady_state(&self, p: Watt) -> f64 {
        self.t_ambient + p.value() * self.r_th
    }

    /// Advance the node by `dt` under constant power `p` (exact exponential
    /// integration of the linear ODE).
    pub fn step(&mut self, p: Watt, dt: SimDuration) {
        let t_inf = self.steady_state(p);
        let tau = self.time_constant_secs();
        let alpha = (-dt.as_secs_f64() / tau).exp();
        self.t_junction = t_inf + (self.t_junction - t_inf) * alpha;
    }

    /// Reset to ambient.
    pub fn reset(&mut self) {
        self.t_junction = self.t_ambient;
    }
}

impl hcapp_sim_core::state::Snapshot for ThermalModel {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.f64("thermal.t_junction", self.t_junction);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.t_junction = r.f64("thermal.t_junction")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn node() -> ThermalModel {
        // tau = 1 ms: fast for a silicon die but keeps tests cheap; the
        // paper's point (thermal ≫ electrical timescale) still holds since
        // the electrical control period is 1 µs.
        ThermalModel::new(0.5, 2e-3, 320.0)
    }

    #[test]
    fn starts_at_ambient() {
        assert_close!(node().temperature(), 320.0, 1e-12);
    }

    #[test]
    fn approaches_steady_state() {
        let mut n = node();
        let p = Watt::new(40.0);
        // 10 time constants → within 0.005% of steady state.
        for _ in 0..10_000 {
            n.step(p, SimDuration::from_micros(1));
        }
        assert_close!(n.temperature(), n.steady_state(p), 0.01);
        assert_close!(n.steady_state(p), 340.0, 1e-12);
    }

    #[test]
    fn heats_monotonically_under_constant_power() {
        let mut n = node();
        let mut prev = n.temperature();
        for _ in 0..100 {
            n.step(Watt::new(20.0), SimDuration::from_micros(10));
            assert!(n.temperature() >= prev);
            prev = n.temperature();
        }
    }

    #[test]
    fn cools_when_power_removed() {
        let mut n = node();
        for _ in 0..1000 {
            n.step(Watt::new(40.0), SimDuration::from_micros(10));
        }
        let hot = n.temperature();
        for _ in 0..1000 {
            n.step(Watt::ZERO, SimDuration::from_micros(10));
        }
        assert!(n.temperature() < hot);
        // And returns toward ambient.
        for _ in 0..10_000 {
            n.step(Watt::ZERO, SimDuration::from_micros(10));
        }
        assert_close!(n.temperature(), 320.0, 0.01);
    }

    #[test]
    fn step_size_invariance() {
        // Exact integration: one 1 ms step equals a thousand 1 µs steps.
        let p = Watt::new(30.0);
        let mut coarse = node();
        coarse.step(p, SimDuration::from_millis(1));
        let mut fine = node();
        for _ in 0..1000 {
            fine.step(p, SimDuration::from_micros(1));
        }
        assert_close!(coarse.temperature(), fine.temperature(), 1e-9);
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut n = node();
        n.step(Watt::new(40.0), SimDuration::from_millis(5));
        n.reset();
        assert_close!(n.temperature(), 320.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn bad_params_panic() {
        let _ = ThermalModel::new(0.0, 1.0, 300.0);
    }
}

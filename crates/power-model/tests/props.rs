//! Property-based tests for the power models.
//!
//! Compiled only with `--features proptest` so the default `cargo test -q`
//! stays lean; the suite runs against the local proptest shim
//! (`crates/proptest-shim`), so no registry access is needed either way.
#![cfg(feature = "proptest")]

use hcapp_power_model::{
    ComponentPowerModel, DynamicPower, FrequencyModel, LeakageModel, OperatingPointTable,
    ThermalModel,
};
use hcapp_sim_core::time::SimDuration;
use hcapp_sim_core::units::{Hertz, Volt, Watt};
use proptest::prelude::*;

fn arb_freq_model() -> impl Strategy<Value = FrequencyModel> {
    (0.3f64..0.6, 0.2f64..0.8, 0.1f64..1.0, 1.0f64..3.0).prop_map(|(vth, span, fmin_r, fmax)| {
        FrequencyModel::new(
            Volt::new(vth),
            Volt::new(vth + span),
            Hertz::from_ghz(fmax * fmin_r),
            Hertz::from_ghz(fmax),
        )
    })
}

proptest! {
    /// Frequency is monotone non-decreasing in voltage and stays in range.
    #[test]
    fn frequency_monotone_and_bounded(m in arb_freq_model(), v1 in 0.0f64..2.0, v2 in 0.0f64..2.0) {
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let f_lo = m.frequency_at(Volt::new(lo));
        let f_hi = m.frequency_at(Volt::new(hi));
        prop_assert!(f_lo.value() <= f_hi.value() + 1e-6);
        prop_assert!(f_lo.value() >= m.f_min.value() - 1e-6);
        prop_assert!(f_hi.value() <= m.f_max.value() + 1e-6);
    }

    /// voltage_for/frequency_at roundtrip on the achievable range.
    #[test]
    fn freq_inverse_roundtrip(m in arb_freq_model(), t in 0.0f64..1.0) {
        let f = Hertz::new(m.f_min.value() + t * (m.f_max.value() - m.f_min.value()));
        let v = m.voltage_for(f);
        let back = m.frequency_at(v);
        prop_assert!((back.value() - f.value()).abs() <= 1e-3 * m.f_max.value(),
            "f {} -> v {} -> f {}", f.value(), v.value(), back.value());
    }

    /// Total power is monotone in voltage and in activity.
    #[test]
    fn power_monotone(m in arb_freq_model(),
                      ceff in 1e-10f64..1e-8,
                      leak in 0.0f64..5.0,
                      v1 in 0.5f64..1.5, v2 in 0.5f64..1.5,
                      a1 in 0.0f64..1.0, a2 in 0.0f64..1.0) {
        let cpm = ComponentPowerModel::new(m, DynamicPower::new(ceff), LeakageModel::new(leak));
        let (vlo, vhi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let (alo, ahi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        prop_assert!(cpm.power(Volt::new(vlo), alo).value()
                  <= cpm.power(Volt::new(vhi), alo).value() + 1e-9);
        prop_assert!(cpm.power(Volt::new(vlo), alo).value()
                  <= cpm.power(Volt::new(vlo), ahi).value() + 1e-9);
    }

    /// Power decomposes exactly into dynamic + leakage.
    #[test]
    fn power_decomposition(m in arb_freq_model(), ceff in 1e-10f64..1e-8,
                           leak in 0.0f64..5.0, v in 0.5f64..1.5, a in 0.0f64..1.0) {
        let cpm = ComponentPowerModel::new(m, DynamicPower::new(ceff), LeakageModel::new(leak));
        let v = Volt::new(v);
        let total = cpm.power(v, a).value();
        let parts = cpm.dynamic_power(v, a).value() + cpm.leakage_power(v).value();
        prop_assert!((total - parts).abs() < 1e-9 * total.max(1.0));
    }

    /// Operating-point floor never exceeds the requested voltage (unless the
    /// request is below the whole table).
    #[test]
    fn opp_floor_is_safe(v in 0.0f64..2.0) {
        let m = FrequencyModel::new(
            Volt::new(0.5), Volt::new(1.25),
            Hertz::from_mhz(800.0), Hertz::from_ghz(2.0));
        let t = OperatingPointTable::from_model(&m, Volt::new(0.7), Volt::new(1.2), 11);
        let p = t.floor(Volt::new(v));
        if v >= 0.7 {
            prop_assert!(p.voltage.value() <= v + 1e-9);
        } else {
            prop_assert!((p.voltage.value() - 0.7).abs() < 1e-9);
        }
    }

    /// Thermal temperature always lies between ambient and the steady state
    /// for constant-power heating from ambient.
    #[test]
    fn thermal_bounded(p in 0.0f64..100.0, steps in 1usize..500) {
        let mut n = ThermalModel::new(0.5, 2e-3, 320.0);
        let power = Watt::new(p);
        for _ in 0..steps {
            n.step(power, SimDuration::from_micros(10));
        }
        let t = n.temperature();
        prop_assert!(t >= 320.0 - 1e-9);
        prop_assert!(t <= n.steady_state(power) + 1e-9);
    }
}

//! A zero-dependency, generation-only stand-in for the subset of the
//! [proptest](https://docs.rs/proptest) API that the HCAPP property suites
//! use.
//!
//! The real proptest cannot be fetched in the offline build environment this
//! workspace targets (simlint rule L4 forbids registry dependencies), so this
//! crate provides the same surface — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, range/tuple/vec strategies, `any`,
//! `prop_map`, `ProptestConfig` — backed by a deterministic splitmix64
//! generator.
//!
//! Intentional differences from the real crate:
//!
//! * **No shrinking.** A failing case reports the case index and the exact
//!   64-bit seed that produced it; re-running is deterministic, so the seed
//!   is a stable reproducer.
//! * **Deterministic by construction.** Seeds derive from the test name and
//!   case index only — never from the clock or OS entropy — so a green run is
//!   a green run everywhere (the same property simlint rule L3 enforces for
//!   the simulators).
//! * **Default case count is 64** (the real crate runs 256); override with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` as usual.

/// Deterministic RNG, test-case plumbing, and run configuration.
pub mod test_runner {
    /// Splitmix64: tiny, fast, and plenty for test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Create a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            // 53 mantissa bits of uniformity.
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform `u64` in `[lo, hi)`. `hi` must exceed `lo`.
        pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo < hi, "empty range");
            let span = hi - lo;
            // Modulo bias is immaterial for test-input generation.
            lo + self.next_u64() % span
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion; the run must abort.
        Fail(String),
        /// The case was rejected by `prop_assume!`; generate a replacement.
        Reject(String),
    }

    /// Run configuration. Only `cases` is modeled.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The `Strategy` trait and the combinators the suites use.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest there is no value tree and no shrinking:
    /// `generate` produces a finished value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_in_range(self.start as u64, self.end as u64) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `prop::collection::vec` and its size specification.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element counts accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.next_in_range(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` for the primitive types the suites draw unconstrained.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, magnitude up to ~1e6: the useful range
            // for physical-quantity tests without manufacturing NaNs.
            (rng.next_unit_f64() - 0.5) * 2e6
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T` (proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(...)` resolves after a
    /// prelude glob import, as with the real crate.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fail the current case unless `cond` holds.
///
/// Expands to an early `Err` return, so it may only appear inside a
/// [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
}

/// Discard the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
///
/// Accepts an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            // FNV-1a over the test name: a stable, clock-free seed root.
            let mut __name_hash: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in stringify!($name).bytes() {
                __name_hash = (__name_hash ^ __b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut __accepted: u32 = 0;
            let mut __attempt: u64 = 0;
            while __accepted < __cfg.cases {
                __attempt += 1;
                assert!(
                    __attempt <= __cfg.cases as u64 * 32 + 1024,
                    "proptest(shim): `{}` rejected too many generated cases",
                    stringify!($name)
                );
                let __seed = __name_hash ^ __attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest(shim): `{}` failed at case {} (seed {:#018x}): {}",
                            stringify!($name),
                            __accepted,
                            __seed,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_seed(42);
        let mut b = crate::test_runner::TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..1000 {
            let x = crate::strategy::Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&x));
            let n = crate::strategy::Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        let exact = crate::collection::vec(0.0f64..1.0, 4);
        let ranged = crate::collection::vec(0u64..10, 2..6);
        for _ in 0..200 {
            assert_eq!(crate::strategy::Strategy::generate(&exact, &mut rng).len(), 4);
            let v = crate::strategy::Strategy::generate(&ranged, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_plumbing_works(x in 1.0f64..2.0, v in prop::collection::vec(0u64..5, 1..4)) {
            prop_assert!(x >= 1.0 && x < 2.0, "x out of range: {x}");
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_and_tuples(g in (0u32..10, 0.0f64..1.0).prop_map(|(n, f)| n as f64 + f)) {
            prop_assert!((0.0..11.0).contains(&g));
        }
    }
}

//! Crash-safe checkpoint container: the `hcapp.ckpt` format and its store.
//!
//! A checkpoint captures *all* mutable run state at a control-quantum
//! boundary so a killed run can resume and produce byte-identical results
//! to one that never stopped (see `core::run_resumable` and DESIGN §6h).
//! This crate owns the durable half of that contract:
//!
//! * [`Checkpoint`] — a versioned container of named state sections. Each
//!   section payload is tagged-line text produced by
//!   [`hcapp_sim_core::state::StateWriter`], so every `f64` travels as its
//!   IEEE-754 bit pattern — the same hex discipline as the `hcapp-cache`
//!   outcome codec. The container records the quantum the snapshot was
//!   taken at, the byte offset of the stitched trace sink, and a 32-hex
//!   fingerprint of the run configuration; a trailing [`hcapp_cache::Hasher`]
//!   checksum over the entire body rejects torn or corrupted files.
//! * [`CheckpointStore`] — atomic persistence with two-slot rotation.
//!   Writes go to a temp file in the same directory and are `rename`d into
//!   place, and the previous checkpoint is kept as `<path>.1`, so a crash at
//!   *any* instant — including mid-write — leaves at least one valid
//!   checkpoint on disk. [`CheckpointStore::latest_valid`] scans both slots,
//!   drops anything with a bad checksum or a foreign config fingerprint,
//!   and returns the survivor with the highest quantum.
//!
//! What is deliberately *not* here: the per-component state schemas (those
//! live next to the private fields they serialize, behind
//! [`hcapp_sim_core::state::Snapshot`]) and the resume driver itself
//! (`core::run_resumable`), which decides when to snapshot and how to
//! stitch the trace stream across the seam.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use hcapp_cache::Hasher;

/// Schema header line; bump the version on any incompatible layout change.
pub const SCHEMA: &str = "hcapp.ckpt v1";

/// A decoded (or under-construction) checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// 32-hex fingerprint of the run configuration the snapshot belongs to.
    pub config: String,
    /// Control quanta completed when the snapshot was taken.
    pub quantum: u64,
    /// Byte length of the stitched trace sink at the snapshot boundary
    /// (0 when the run has no trace sink). Resume truncates the sink to
    /// this offset before appending, which erases any events the killed
    /// process emitted past its last checkpoint.
    pub trace_offset: u64,
    sections: Vec<(String, String)>,
}

fn token_ok(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_graphic())
}

fn fingerprint_ok(s: &str) -> bool {
    s.len() == 32 && s.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase())
}

impl Checkpoint {
    /// Start an empty checkpoint for the given config fingerprint.
    ///
    /// # Panics
    /// Panics if `config` is not 32 lowercase hex digits.
    pub fn new(config: &str, quantum: u64, trace_offset: u64) -> Self {
        assert!(
            fingerprint_ok(config),
            "config fingerprint must be 32 lowercase hex digits, got {config:?}"
        );
        Checkpoint {
            config: config.to_string(),
            quantum,
            trace_offset,
            sections: Vec::new(),
        }
    }

    /// Append a named state section. Section order is part of the format —
    /// the resume driver writes and reads them in a fixed sequence.
    ///
    /// # Panics
    /// Panics on a malformed name or a duplicate.
    pub fn add_section(&mut self, name: &str, payload: String) {
        assert!(token_ok(name), "bad section name {name:?}");
        assert!(
            self.section(name).is_none(),
            "duplicate checkpoint section {name:?}"
        );
        self.sections.push((name.to_string(), payload));
    }

    /// Payload of the named section, if present.
    pub fn section(&self, name: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_str())
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Serialize to the on-disk text format (checksum included).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(SCHEMA);
        out.push('\n');
        out.push_str(&format!("config {}\n", self.config));
        out.push_str(&format!("quantum {}\n", self.quantum));
        out.push_str(&format!("trace_offset {}\n", self.trace_offset));
        out.push_str(&format!("sections {}\n", self.sections.len()));
        for (name, payload) in &self.sections {
            let n_lines = payload.lines().count();
            out.push_str(&format!("section {name} {n_lines}\n"));
            for line in payload.lines() {
                out.push_str(line);
                out.push('\n');
            }
        }
        let sum = Self::checksum(&out);
        out.push_str(&format!("checksum {sum}\n"));
        out
    }

    /// Parse and verify an on-disk checkpoint.
    pub fn decode(text: &str) -> Result<Checkpoint, String> {
        // The checksum line covers every byte before it; verify first so a
        // torn write can never half-parse.
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| "missing checksum line".to_string())?;
        let (body, sum_line) = text.split_at(body_end);
        if !body.is_empty() && !body.ends_with('\n') {
            return Err("checksum not at start of line".to_string());
        }
        let sum_line = sum_line
            .strip_prefix("checksum ")
            .expect("split at checksum prefix");
        let sum = sum_line
            .strip_suffix('\n')
            .ok_or_else(|| "unterminated checksum line".to_string())?;
        if !fingerprint_ok(sum) {
            return Err(format!("malformed checksum {sum:?}"));
        }
        let expect = Self::checksum(body);
        if sum != expect {
            return Err(format!("checksum mismatch: file {sum}, computed {expect}"));
        }

        let mut lines = body.lines();
        let header = lines.next().ok_or_else(|| "empty checkpoint".to_string())?;
        if header != SCHEMA {
            return Err(format!("unsupported schema {header:?} (want {SCHEMA:?})"));
        }
        let config = field(lines.next(), "config")?.to_string();
        if !fingerprint_ok(&config) {
            return Err(format!("malformed config fingerprint {config:?}"));
        }
        let quantum = parse_u64(field(lines.next(), "quantum")?)?;
        let trace_offset = parse_u64(field(lines.next(), "trace_offset")?)?;
        let n_sections = parse_u64(field(lines.next(), "sections")?)? as usize;

        let mut ck = Checkpoint {
            config,
            quantum,
            trace_offset,
            sections: Vec::with_capacity(n_sections),
        };
        for _ in 0..n_sections {
            let head = field(lines.next(), "section")?;
            let (name, count) = head
                .split_once(' ')
                .ok_or_else(|| format!("malformed section header {head:?}"))?;
            if !token_ok(name) || ck.section(name).is_some() {
                return Err(format!("bad or duplicate section name {name:?}"));
            }
            let n_lines = parse_u64(count)? as usize;
            let mut payload = String::new();
            for _ in 0..n_lines {
                let line = lines
                    .next()
                    .ok_or_else(|| format!("section {name:?} truncated"))?;
                payload.push_str(line);
                payload.push('\n');
            }
            ck.sections.push((name.to_string(), payload));
        }
        if lines.next().is_some() {
            return Err("trailing garbage after sections".to_string());
        }
        Ok(ck)
    }

    fn checksum(body: &str) -> String {
        let mut h = Hasher::new();
        h.write_str("hcapp.ckpt.checksum");
        h.write_str(body);
        h.finish().to_hex()
    }
}

fn field<'a>(line: Option<&'a str>, tag: &str) -> Result<&'a str, String> {
    let line = line.ok_or_else(|| format!("missing {tag} line"))?;
    line.strip_prefix(tag)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| format!("expected {tag} line, got {line:?}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("malformed integer {s:?}"))
}

/// Atomic, two-slot checkpoint persistence.
///
/// The store owns a primary path (conventionally `hcapp.ckpt`); the previous
/// snapshot survives as `<path>.1`. Save order — rotate, write temp, rename —
/// guarantees a kill at any instant leaves a valid checkpoint reachable by
/// [`CheckpointStore::latest_valid`].
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    path: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at the given checkpoint path.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointStore { path: path.into() }
    }

    /// The primary checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn rotated(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Persist a checkpoint atomically, rotating the previous one to the
    /// `.1` slot.
    pub fn save(&self, ck: &Checkpoint) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        if self.path.exists() {
            fs::rename(&self.path, self.rotated())?;
        }
        // Same-directory temp file so the final rename cannot cross a
        // filesystem boundary (which would forfeit atomicity).
        let mut tmp = self.path.as_os_str().to_os_string();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, ck.encode())?;
        fs::rename(&tmp, &self.path)
    }

    /// The newest on-disk checkpoint that passes its checksum and matches
    /// the given config fingerprint, together with the slot it came from.
    /// Corrupt, torn, or foreign-config slots are skipped silently — a
    /// resume with no usable checkpoint is just a fresh start.
    pub fn latest_valid(&self, config: &str) -> Option<(Checkpoint, PathBuf)> {
        let mut best: Option<(Checkpoint, PathBuf)> = None;
        for path in [self.path.clone(), self.rotated()] {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Ok(ck) = Checkpoint::decode(&text) else {
                continue;
            };
            if ck.config != config {
                continue;
            }
            let newer = best
                .as_ref()
                .map(|(b, _)| ck.quantum > b.quantum)
                .unwrap_or(true);
            if newer {
                best = Some((ck, path));
            }
        }
        best
    }

    /// Remove both slots (ignoring files that are already gone).
    pub fn clear(&self) -> io::Result<()> {
        for path in [self.path.clone(), self.rotated()] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::state::StateWriter;

    fn fp(n: u8) -> String {
        format!("{:032x}", u128::from(n))
    }

    fn sample() -> Checkpoint {
        let mut ck = Checkpoint::new(&fp(7), 1234, 567);
        let mut w = StateWriter::new();
        w.f64("pid.integral", -0.0625);
        w.opt_u64("cursor", Some(3));
        ck.add_section("loop", w.finish());
        let mut w = StateWriter::new();
        w.f64_slice("vr.pending", &[1.05, f64::NAN]);
        ck.add_section("domain.0", w.finish());
        ck
    }

    #[test]
    fn encode_decode_round_trip() {
        let ck = sample();
        let text = ck.encode();
        let back = Checkpoint::decode(&text).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.section_names().collect::<Vec<_>>(), ["loop", "domain.0"]);
        // Re-encoding is byte-stable.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn empty_sections_round_trip() {
        let ck = Checkpoint::new(&fp(1), 0, 0);
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn single_bit_corruption_is_rejected() {
        let text = sample().encode();
        for i in 0..text.len() {
            let mut bytes = text.clone().into_bytes();
            bytes[i] ^= 0x01;
            let Ok(s) = String::from_utf8(bytes) else {
                continue;
            };
            assert!(
                Checkpoint::decode(&s).is_err(),
                "flipping byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let text = sample().encode();
        for cut in [1, text.len() / 2, text.len() - 1] {
            assert!(Checkpoint::decode(&text[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = sample().encode().replace("ckpt v1", "ckpt v9");
        let err = Checkpoint::decode(&text).unwrap_err();
        // The checksum sees the flipped version byte first.
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn duplicate_section_panics() {
        let mut ck = Checkpoint::new(&fp(2), 1, 0);
        ck.add_section("pid", String::new());
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ck.add_section("pid", String::new());
        }));
        assert!(dup.is_err());
    }

    #[test]
    fn store_save_and_load() {
        let dir = std::env::temp_dir().join(format!("hcapp_resume_t1_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(dir.join("hcapp.ckpt"));
        assert!(store.latest_valid(&fp(7)).is_none());

        let ck = sample();
        store.save(&ck).unwrap();
        let (got, path) = store.latest_valid(&fp(7)).unwrap();
        assert_eq!(got, ck);
        assert_eq!(path, store.path());
        // Foreign config fingerprints are invisible.
        assert!(store.latest_valid(&fp(8)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_previous_and_prefers_newest() {
        let dir = std::env::temp_dir().join(format!("hcapp_resume_t2_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(dir.join("hcapp.ckpt"));

        let mut older = sample();
        older.quantum = 100;
        let mut newer = sample();
        newer.quantum = 200;
        store.save(&older).unwrap();
        store.save(&newer).unwrap();
        assert!(store.rotated().exists());

        let (got, _) = store.latest_valid(&fp(7)).unwrap();
        assert_eq!(got.quantum, 200);

        // Corrupt the primary slot (torn write): the rotated previous
        // checkpoint takes over.
        fs::write(store.path(), "hcapp.ckpt v1\ngarbage\n").unwrap();
        let (got, path) = store.latest_valid(&fp(7)).unwrap();
        assert_eq!(got.quantum, 100);
        assert_eq!(path, store.rotated());

        store.clear().unwrap();
        assert!(store.latest_valid(&fp(7)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Static-analysis gate: the whole workspace must pass simlint's rules
//! (unit safety, no-panic, determinism, dependency layering, controller doc
//! coverage). See crates/simlint for the rules and the allowlist syntax.

#[test]
fn simlint_workspace_clean() {
    simlint::assert_workspace_clean(env!("CARGO_MANIFEST_DIR"));
}

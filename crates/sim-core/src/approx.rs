//! Floating-point comparison helpers shared by tests and calibration code.

/// True when `a` and `b` agree within absolute tolerance `tol`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// True when `a` and `b` agree within relative tolerance `rel` (falling back
/// to absolute comparison near zero).
#[inline]
pub fn approx_eq_rel(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs());
    if scale < 1e-12 {
        return true;
    }
    (a - b).abs() <= rel * scale
}

/// Assert that two values agree within absolute tolerance, with a useful
/// message on failure.
#[macro_export]
macro_rules! assert_close {
    ($a:expr, $b:expr, $tol:expr) => {{
        let (a, b, tol) = ($a, $b, $tol);
        assert!(
            $crate::approx::approx_eq(a, b, tol),
            "assert_close failed: {} = {a}, {} = {b}, |diff| = {} > {tol}",
            stringify!($a),
            stringify!($b),
            (a - b).abs()
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute() {
        assert!(approx_eq(1.0, 1.0000001, 1e-5));
        assert!(!approx_eq(1.0, 1.1, 1e-5));
    }

    #[test]
    fn relative() {
        assert!(approx_eq_rel(1000.0, 1001.0, 0.01));
        assert!(!approx_eq_rel(1000.0, 1100.0, 0.01));
        assert!(approx_eq_rel(0.0, 1e-13, 0.01));
    }

    #[test]
    fn macro_passes() {
        assert_close!(2.0, 2.0 + 1e-9, 1e-6);
    }

    #[test]
    #[should_panic(expected = "assert_close failed")]
    fn macro_fails() {
        assert_close!(2.0, 3.0, 1e-6);
    }
}

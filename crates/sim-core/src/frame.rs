//! Borrow-based stepping frame for the quantum-stepper kernel.
//!
//! The chiplet simulators' original `step(&[Volt], dt) -> Watt` entry
//! points return owned values and leave the caller to scatter them into
//! its accumulators. The kernel instead hands each simulator a
//! [`StepFrame`] borrowing the per-unit voltage lane and the power
//! accumulator slot for the current tick; the simulator writes straight
//! through the borrow. Every `step_into` implementation is required to be
//! bit-identical to its `step` counterpart — the per-crate
//! `step_into_matches_step` tests and the golden-digest corpus
//! (`tests/golden_digests.txt`) pin that contract.

use crate::time::SimDuration;
use crate::units::Volt;

/// One tick's borrowed inputs and outputs for a chiplet simulator.
#[derive(Debug)]
pub struct StepFrame<'a> {
    /// Supply voltage per locally-controllable unit (core / SM / lane).
    pub voltages: &'a [Volt],
    /// Model tick length.
    pub dt: SimDuration,
    /// The tick's package-power accumulator slot; the simulator *adds*
    /// its chiplet power (in watts) to whatever is already there.
    pub power_acc: &'a mut f64,
}

impl<'a> StepFrame<'a> {
    /// Bundle a tick's borrows.
    #[inline]
    pub fn new(voltages: &'a [Volt], dt: SimDuration, power_acc: &'a mut f64) -> Self {
        StepFrame {
            voltages,
            dt,
            power_acc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_accumulates_through_the_borrow() {
        let volts = [Volt::new(0.9); 2];
        let mut acc = 1.5;
        let frame = StepFrame::new(&volts, SimDuration::from_nanos(100), &mut acc);
        *frame.power_acc += 2.5;
        assert_eq!(acc, 4.0);
    }
}

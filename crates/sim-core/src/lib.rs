//! Simulation kernel for the HCAPP reproduction.
//!
//! This crate provides the domain-independent substrate every other crate in
//! the workspace builds on:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) with checked arithmetic and human-readable display.
//! * [`units`] — thin `f64` newtypes for the physical quantities the power
//!   controllers exchange ([`Volt`], [`Watt`], [`Hertz`]).
//! * [`rng`] — a deterministic, splittable random number generator so that
//!   serial and parallel executions of the same experiment produce identical
//!   traces.
//! * [`window`] — O(1)-per-sample sliding-window average and windowed-maximum
//!   trackers used to evaluate power limits over their specification windows
//!   (20 µs package-pin limit, 1 ms off-package VR limit).
//! * [`stats`] — streaming statistics (Welford mean/variance, geometric mean)
//!   used by the evaluation metrics.
//! * [`series`] — fixed-step time series with decimation, normalization and
//!   window transforms (used to regenerate Figures 1 and 2).
//! * [`report`] — fixed-width console tables and CSV emission shared by the
//!   experiment binaries.
//!
//! Everything here avoids I/O besides [`report`], is allocation-conscious in
//! per-sample paths, and is deterministic.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod approx;
pub mod frame;
pub mod report;
pub mod rng;
pub mod series;
pub mod state;
pub mod stats;
pub mod time;
pub mod units;
pub mod window;

pub use approx::approx_eq;
pub use frame::StepFrame;
pub use rng::DeterministicRng;
pub use series::TimeSeries;
pub use state::{Snapshot, StateReader, StateWriter};
pub use stats::{geometric_mean, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use units::{Hertz, Volt, Watt};
pub use window::{SlidingWindowAvg, WindowedMaxTracker};

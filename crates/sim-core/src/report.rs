//! Console tables and CSV emission for the experiment harness.
//!
//! Every experiment binary prints the rows/series the paper reports as a
//! fixed-width console table and also writes a CSV under `results/` so the
//! numbers can be plotted and diffed across runs.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the arity differs from the header row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as an aligned console string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render as CSV (headers + rows), quoting cells that need it.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", csv_line(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", csv_line(row));
        }
        out
    }

    /// Write the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

fn csv_line(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| csv_escape(c))
        .collect::<Vec<_>>()
        .join(",")
}

fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Format a ratio as a percentage string like `93.9%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a speedup ratio like `1.43x`.
pub fn speedup(x: f64) -> String {
    format!("{x:.3}x")
}

/// Format a plain f64 with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Write a multi-series CSV: one `t` column followed by one column per series.
///
/// All series must have equal lengths; `t` supplies the time axis values.
pub fn write_series_csv(
    path: impl AsRef<Path>,
    t_label: &str,
    t: &[f64],
    series: &[(&str, &[f64])],
) -> io::Result<()> {
    for (name, s) in series {
        assert_eq!(
            s.len(),
            t.len(),
            "series '{name}' length {} != time axis length {}",
            s.len(),
            t.len()
        );
    }
    let mut out = String::new();
    let mut header = vec![t_label.to_string()];
    header.extend(series.iter().map(|(n, _)| n.to_string()));
    let _ = writeln!(out, "{}", csv_line(&header));
    for i in 0..t.len() {
        let mut row = vec![format!("{:.6}", t[i])];
        for (_, s) in series {
            row.push(format!("{:.6}", s[i]));
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(vec!["short".into(), "1".into()]);
        t.add_row(vec!["a-much-longer-name".into(), "22.5".into()]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("a-much-longer-name"));
        // Header and row columns align: "value" starts at the same offset.
        let lines: Vec<&str> = r.lines().collect();
        let header_off = lines[1].find("value").unwrap();
        let row_off = lines[3].find('1').unwrap();
        assert_eq!(header_off, row_off);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("hcapp_report_test");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a"]);
        t.add_row(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(got, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.939), "93.9%");
        assert_eq!(speedup(1.43), "1.430x");
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn series_csv() {
        let dir = std::env::temp_dir().join("hcapp_series_test");
        let path = dir.join("s.csv");
        write_series_csv(
            &path,
            "t_us",
            &[0.0, 1.0],
            &[("a", &[10.0, 20.0][..]), ("b", &[1.0, 2.0][..])],
        )
        .unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        let mut lines = got.lines();
        assert_eq!(lines.next().unwrap(), "t_us,a,b");
        assert!(lines.next().unwrap().starts_with("0.000000,10.000000"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn series_csv_length_mismatch() {
        let _ = write_series_csv(
            std::env::temp_dir().join("never.csv"),
            "t",
            &[0.0],
            &[("a", &[1.0, 2.0][..])],
        );
    }
}

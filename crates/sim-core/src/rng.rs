//! Deterministic, splittable pseudo-random number generation.
//!
//! Experiments must be reproducible bit-for-bit, and the chiplet-parallel
//! coordinator must produce exactly the same trace as the serial one. We
//! therefore avoid any global or thread-local RNG state: every component that
//! needs randomness derives its own independent stream from the run seed and
//! a stable stream identifier via [`DeterministicRng::derive`].
//!
//! The generator is xoshiro256\*\* (public domain, Blackman & Vigna) seeded
//! through SplitMix64, the standard seeding recipe for the xoshiro family.
//! It is small, fast (≈1 ns per `u64`), and passes BigCrush — more than
//! adequate for workload jitter.

/// A 256-bit-state xoshiro256\*\* generator with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DeterministicRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DeterministicRng { s }
    }

    /// Derive an independent stream for component `stream_id` of run `seed`.
    ///
    /// Streams with different ids never share state: the id is folded into
    /// the seed through an avalanche step before normal seeding, so e.g.
    /// chiplet 0 / core 3 and chiplet 1 / core 0 see unrelated sequences.
    pub fn derive(seed: u64, stream_id: u64) -> Self {
        let mut sm = seed ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // One extra scramble so adjacent stream ids decorrelate fully.
        let folded = splitmix64(&mut sm) ^ seed.rotate_left(17);
        DeterministicRng::new(folded)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` (Lemire's unbiased method simplified to
    /// modulo; bias is ≤ 2⁻⁵³·n which is negligible for simulation use).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (self.next_f64() * n as f64) as u64
    }

    /// Standard normal variate (Marsaglia polar method).
    pub fn gauss(&mut self) -> f64 {
        loop {
            let u = self.uniform(-1.0, 1.0);
            let v = self.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gauss()
    }

    /// Exponential variate with the given mean (used for burst inter-arrival
    /// times in the bursty workload generators).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - next_f64() is in (0, 1], so ln() is finite.
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl crate::state::Snapshot for DeterministicRng {
    fn save_state(&self, w: &mut crate::state::StateWriter) {
        w.u64_slice("rng.s", &self.s);
    }

    fn load_state(&mut self, r: &mut crate::state::StateReader<'_>) -> Option<()> {
        let s = r.u64_vec("rng.s")?;
        self.s = s.try_into().ok()?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent() {
        let mut a = DeterministicRng::derive(7, 0);
        let mut b = DeterministicRng::derive(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
        // Same (seed, id) must reproduce.
        let mut c = DeterministicRng::derive(7, 1);
        let mut d = DeterministicRng::derive(7, 1);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = DeterministicRng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = DeterministicRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gauss_moments() {
        let mut rng = DeterministicRng::new(5);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DeterministicRng::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = DeterministicRng::new(13);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn chance_rate() {
        let mut rng = DeterministicRng::new(17);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}

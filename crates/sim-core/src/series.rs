//! Fixed-step time series.
//!
//! Figures 1 and 2 of the paper plot the package power trace of a run —
//! raw (normalized to its mean) and re-filtered through 20 µs / 1 ms / 10 ms
//! windows. [`TimeSeries`] stores a signal sampled on a fixed tick and
//! provides exactly those transforms, plus decimation so a 2-million-sample
//! trace can be exported as a plottable CSV of a few thousand rows.

use crate::time::SimDuration;
use crate::window::SlidingWindowAvg;

/// A signal sampled at a fixed interval starting at t = 0.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    dt: SimDuration,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create an empty series with sample interval `dt`.
    ///
    /// # Panics
    /// Panics if `dt` is zero.
    pub fn new(dt: SimDuration) -> Self {
        assert!(!dt.is_zero(), "sample interval must be positive");
        TimeSeries {
            dt,
            values: Vec::new(),
        }
    }

    /// Create an empty series with room for `capacity` samples.
    pub fn with_capacity(dt: SimDuration, capacity: usize) -> Self {
        assert!(!dt.is_zero(), "sample interval must be positive");
        TimeSeries {
            dt,
            values: Vec::with_capacity(capacity),
        }
    }

    /// Create a series from existing samples.
    pub fn from_values(dt: SimDuration, values: Vec<f64>) -> Self {
        assert!(!dt.is_zero(), "sample interval must be positive");
        TimeSeries { dt, values }
    }

    /// Sample interval.
    #[inline]
    pub fn dt(&self) -> SimDuration {
        self.dt
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The samples.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total covered duration (`len * dt`).
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.dt * self.values.len() as u64
    }

    /// Append one sample.
    #[inline]
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Timestamp of sample `i`, in microseconds (the unit of Figure 1's axis).
    #[inline]
    pub fn time_us(&self, i: usize) -> f64 {
        (self.dt.as_nanos() as f64 * i as f64) * 1e-3
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.min(v),
            })
        })
    }

    /// The series divided by its own mean — Figure 1's "power normalized to
    /// the average power". Returns an all-zero copy if the mean is zero.
    // simlint: allow(L8): zero-mean sentinel guards the division; an
    // all-zero series has a mean of exactly 0.0
    pub fn normalized_to_mean(&self) -> TimeSeries {
        let m = self.mean();
        let values = if m == 0.0 {
            vec![0.0; self.values.len()]
        } else {
            self.values.iter().map(|v| v / m).collect()
        };
        TimeSeries {
            dt: self.dt,
            values,
        }
    }

    /// The series passed through a trailing moving-average of width `window`
    /// — Figure 2's "power limit time window" view. The output keeps the
    /// input's sample interval; the first `window/dt − 1` outputs average the
    /// partial prefix, matching how a measurement circuit warms up.
    ///
    /// # Panics
    /// Panics if `window` is smaller than the sample interval.
    pub fn windowed(&self, window: SimDuration) -> TimeSeries {
        let n = (window.as_nanos() / self.dt.as_nanos()).max(1) as usize;
        assert!(
            window.as_nanos() >= self.dt.as_nanos(),
            "window {window} smaller than sample interval {}",
            self.dt
        );
        let mut w = SlidingWindowAvg::new(n);
        let values = self
            .values
            .iter()
            .map(|&v| {
                w.push(v);
                w.average()
            })
            .collect();
        TimeSeries {
            dt: self.dt,
            values,
        }
    }

    /// Keep every `factor`-th sample (for plotting/CSV export).
    ///
    /// # Panics
    /// Panics if `factor` is zero.
    pub fn decimate(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "decimation factor must be positive");
        TimeSeries {
            dt: self.dt * factor as u64,
            values: self.values.iter().step_by(factor).copied().collect(),
        }
    }

    /// Decimate to at most `max_points` samples (no-op if already short).
    pub fn thin_to(&self, max_points: usize) -> TimeSeries {
        assert!(max_points > 0, "max_points must be positive");
        if self.values.len() <= max_points {
            self.clone()
        } else {
            self.decimate(self.values.len().div_ceil(max_points))
        }
    }

    /// Iterator over `(time_us, value)` pairs.
    pub fn iter_us(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let dt_us = self.dt.as_nanos() as f64 * 1e-3;
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as f64 * dt_us, v))
    }
}

impl crate::state::Snapshot for TimeSeries {
    fn save_state(&self, w: &mut crate::state::StateWriter) {
        w.u64("ts.dt_ns", self.dt.as_nanos());
        w.f64_slice("ts.values", &self.values);
    }

    fn load_state(&mut self, r: &mut crate::state::StateReader<'_>) -> Option<()> {
        // The interval is configuration; require it to match rather than
        // silently rescaling the time axis of a restored trace.
        if r.u64("ts.dt_ns")? != self.dt.as_nanos() {
            return None;
        }
        self.values = r.f64_vec("ts.values")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_panics() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn push_and_stats() {
        let mut s = TimeSeries::new(us(1));
        for v in [1.0, 2.0, 3.0, 6.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.max(), Some(6.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.duration(), us(4));
        assert!((s.time_us(3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let s = TimeSeries::from_values(us(1), vec![50.0, 100.0, 150.0]);
        let n = s.normalized_to_mean();
        assert!((n.values()[0] - 0.5).abs() < 1e-12);
        assert!((n.values()[1] - 1.0).abs() < 1e-12);
        assert!((n.values()[2] - 1.5).abs() < 1e-12);
        // Mean of normalized series is 1.
        assert!((n.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_series() {
        let s = TimeSeries::from_values(us(1), vec![0.0, 0.0]);
        let n = s.normalized_to_mean();
        assert_eq!(n.values(), &[0.0, 0.0]);
    }

    #[test]
    fn windowed_smooths_peaks() {
        // A single-sample spike of 100 in a sea of zeros: a 4-sample window
        // reduces the peak to 25.
        let mut vals = vec![0.0; 32];
        vals[16] = 100.0;
        let s = TimeSeries::from_values(us(1), vals);
        let w = s.windowed(us(4));
        assert_eq!(w.len(), s.len());
        assert!((w.max().unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_identity_when_window_equals_dt() {
        let s = TimeSeries::from_values(us(1), vec![3.0, 1.0, 4.0]);
        let w = s.windowed(us(1));
        assert_eq!(w.values(), s.values());
    }

    #[test]
    fn decimate_and_thin() {
        let s = TimeSeries::from_values(us(1), (0..100).map(|i| i as f64).collect());
        let d = s.decimate(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.dt(), us(10));
        assert_eq!(d.values()[1], 10.0);

        let t = s.thin_to(7);
        assert!(t.len() <= 7);
        let same = s.thin_to(500);
        assert_eq!(same.len(), 100);
    }

    #[test]
    fn iter_us_pairs() {
        let s = TimeSeries::from_values(us(2), vec![5.0, 7.0]);
        let pairs: Vec<_> = s.iter_us().collect();
        assert_eq!(pairs.len(), 2);
        assert!((pairs[1].0 - 2.0).abs() < 1e-12);
        assert!((pairs[1].1 - 7.0).abs() < 1e-12);
    }
}

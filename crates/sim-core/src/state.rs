//! Tagged-line state serialization for checkpoint/resume.
//!
//! The resume subsystem (crate `hcapp-resume`) snapshots *all* mutable run
//! state at a control-quantum boundary and must restore it bit-for-bit: a
//! resumed run has to produce byte-identical results to one that never
//! stopped. That rules out any text format that round-trips floats through
//! decimal. This module provides the substrate both sides share:
//!
//! * [`StateWriter`] / [`StateReader`] — a line-oriented `tag value` codec.
//!   Every `f64` is stored as the 16-hex-digit IEEE-754 bit pattern (the same
//!   discipline as the `hcapp-cache` outcome codec), so restoration is exact
//!   for every value including negative zero, infinities and NaN payloads.
//! * [`Snapshot`] — the trait each stateful component implements to stream
//!   its mutable fields through a writer and back. Implementations live next
//!   to the private fields they capture; configuration (gains, capacities,
//!   delays) is deliberately *not* written — it is rebuilt from the run
//!   configuration, and a fingerprint check in the checkpoint container
//!   rejects mismatched configs before any `load_state` call runs.
//!
//! Reading is strictly sequential and tag-checked: a reader returns `None`
//! on the first tag mismatch, malformed value, or premature end of input,
//! and `Snapshot::load_state` propagates that with `?`. Corrupt or truncated
//! checkpoints therefore fail loudly at load time instead of resuming from
//! half-restored state.

/// A component whose mutable state can be checkpointed and restored.
///
/// Contract: `save_state` followed by `load_state` on a freshly-constructed
/// value (same configuration) must make the two values behave identically —
/// every subsequent observation bit-equal. `load_state` returns `None` if
/// the reader's next lines are not a well-formed snapshot of this type; the
/// value may be partially overwritten in that case and must be discarded.
pub trait Snapshot {
    /// Append this component's mutable state to `w`.
    fn save_state(&self, w: &mut StateWriter);
    /// Restore mutable state previously written by [`Snapshot::save_state`].
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Option<()>;
}

/// Serializer for the tagged-line state format.
///
/// ```
/// use hcapp_sim_core::state::{StateReader, StateWriter};
///
/// let mut w = StateWriter::new();
/// w.f64("bias", -0.0);
/// w.u64_slice("seeds", &[1, 2, 3]);
/// let text = w.finish();
///
/// let mut r = StateReader::new(&text);
/// assert_eq!(r.f64("bias").unwrap().to_bits(), (-0.0f64).to_bits());
/// assert_eq!(r.u64_vec("seeds").unwrap(), vec![1, 2, 3]);
/// assert!(r.finished().is_some());
/// ```
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: String,
}

impl StateWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        StateWriter { buf: String::new() }
    }

    fn tag_ok(tag: &str) -> bool {
        !tag.is_empty() && tag.chars().all(|c| c.is_ascii_graphic())
    }

    /// Write an unsigned integer line: `tag 123`.
    pub fn u64(&mut self, tag: &str, v: u64) {
        debug_assert!(Self::tag_ok(tag), "bad state tag {tag:?}");
        self.buf.push_str(tag);
        self.buf.push(' ');
        self.buf.push_str(&v.to_string());
        self.buf.push('\n');
    }

    /// Write a `usize` (stored as `u64`).
    pub fn usize(&mut self, tag: &str, v: usize) {
        self.u64(tag, v as u64);
    }

    /// Write a `u32` (stored as `u64`).
    pub fn u32(&mut self, tag: &str, v: u32) {
        self.u64(tag, u64::from(v));
    }

    /// Write a boolean as `0` / `1`.
    pub fn bool(&mut self, tag: &str, v: bool) {
        self.u64(tag, u64::from(v));
    }

    /// Write an `f64` as its 16-hex-digit bit pattern: `tag 3ff0000000000000`.
    pub fn f64(&mut self, tag: &str, v: f64) {
        debug_assert!(Self::tag_ok(tag), "bad state tag {tag:?}");
        self.buf.push_str(tag);
        self.buf.push(' ');
        self.buf.push_str(&format!("{:016x}", v.to_bits()));
        self.buf.push('\n');
    }

    /// Write an optional `f64`: `tag none` or `tag some <hex>`.
    pub fn opt_f64(&mut self, tag: &str, v: Option<f64>) {
        debug_assert!(Self::tag_ok(tag), "bad state tag {tag:?}");
        self.buf.push_str(tag);
        match v {
            None => self.buf.push_str(" none"),
            Some(x) => {
                self.buf.push_str(" some ");
                self.buf.push_str(&format!("{:016x}", x.to_bits()));
            }
        }
        self.buf.push('\n');
    }

    /// Write an optional `u64`: `tag none` or `tag some 123`.
    pub fn opt_u64(&mut self, tag: &str, v: Option<u64>) {
        debug_assert!(Self::tag_ok(tag), "bad state tag {tag:?}");
        self.buf.push_str(tag);
        match v {
            None => self.buf.push_str(" none"),
            Some(x) => {
                self.buf.push_str(" some ");
                self.buf.push_str(&x.to_string());
            }
        }
        self.buf.push('\n');
    }

    /// Write a slice of `f64` on one line: `tag <n> <hex> <hex> ...`.
    pub fn f64_slice(&mut self, tag: &str, vs: &[f64]) {
        debug_assert!(Self::tag_ok(tag), "bad state tag {tag:?}");
        self.buf.push_str(tag);
        self.buf.push(' ');
        self.buf.push_str(&vs.len().to_string());
        for v in vs {
            self.buf.push(' ');
            self.buf.push_str(&format!("{:016x}", v.to_bits()));
        }
        self.buf.push('\n');
    }

    /// Write a slice of `u64` on one line: `tag <n> <v> <v> ...`.
    pub fn u64_slice(&mut self, tag: &str, vs: &[u64]) {
        debug_assert!(Self::tag_ok(tag), "bad state tag {tag:?}");
        self.buf.push_str(tag);
        self.buf.push(' ');
        self.buf.push_str(&vs.len().to_string());
        for v in vs {
            self.buf.push(' ');
            self.buf.push_str(&v.to_string());
        }
        self.buf.push('\n');
    }

    /// Write a single-token string (no whitespace): `tag word`. Used for
    /// enum discriminants and short identifiers.
    ///
    /// # Panics
    /// Panics if `s` is empty or contains whitespace/control characters.
    pub fn token(&mut self, tag: &str, s: &str) {
        debug_assert!(Self::tag_ok(tag), "bad state tag {tag:?}");
        assert!(
            Self::tag_ok(s),
            "state token must be a non-empty printable word, got {s:?}"
        );
        self.buf.push_str(tag);
        self.buf.push(' ');
        self.buf.push_str(s);
        self.buf.push('\n');
    }

    /// Consume the writer and return the serialized text.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Sequential, tag-checked reader for text produced by [`StateWriter`].
///
/// Every accessor consumes exactly one line; `None` means the snapshot does
/// not match what the caller expected (wrong tag, malformed value, or end
/// of input) and the load must be abandoned.
#[derive(Debug)]
pub struct StateReader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> StateReader<'a> {
    /// Read from serialized state text.
    pub fn new(text: &'a str) -> Self {
        StateReader {
            lines: text.lines(),
        }
    }

    /// Next line's value field, if its tag matches.
    fn field(&mut self, tag: &str) -> Option<&'a str> {
        let line = self.lines.next()?;
        let (t, rest) = line.split_once(' ')?;
        if t == tag {
            Some(rest)
        } else {
            None
        }
    }

    /// Read a `u64` line.
    pub fn u64(&mut self, tag: &str) -> Option<u64> {
        self.field(tag)?.parse().ok()
    }

    /// Read a `usize` line.
    pub fn usize(&mut self, tag: &str) -> Option<usize> {
        self.u64(tag).map(|v| v as usize)
    }

    /// Read a `u32` line (rejecting out-of-range values).
    pub fn u32(&mut self, tag: &str) -> Option<u32> {
        u32::try_from(self.u64(tag)?).ok()
    }

    /// Read a boolean line (`0` or `1` only).
    pub fn bool(&mut self, tag: &str) -> Option<bool> {
        match self.u64(tag)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn parse_f64(tok: &str) -> Option<f64> {
        if tok.len() != 16 {
            return None;
        }
        u64::from_str_radix(tok, 16).ok().map(f64::from_bits)
    }

    /// Read an `f64` bit-pattern line.
    pub fn f64(&mut self, tag: &str) -> Option<f64> {
        Self::parse_f64(self.field(tag)?)
    }

    /// Read an optional `f64` line.
    #[allow(clippy::option_option)]
    pub fn opt_f64(&mut self, tag: &str) -> Option<Option<f64>> {
        let rest = self.field(tag)?;
        if rest == "none" {
            return Some(None);
        }
        let tok = rest.strip_prefix("some ")?;
        Self::parse_f64(tok).map(Some)
    }

    /// Read an optional `u64` line.
    #[allow(clippy::option_option)]
    pub fn opt_u64(&mut self, tag: &str) -> Option<Option<u64>> {
        let rest = self.field(tag)?;
        if rest == "none" {
            return Some(None);
        }
        rest.strip_prefix("some ")?.parse().ok().map(Some)
    }

    /// Read an `f64` slice line into a `Vec`.
    pub fn f64_vec(&mut self, tag: &str) -> Option<Vec<f64>> {
        let mut toks = self.field(tag)?.split(' ');
        let n: usize = toks.next()?.parse().ok()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(Self::parse_f64(toks.next()?)?);
        }
        if toks.next().is_some() {
            return None;
        }
        Some(out)
    }

    /// Read a `u64` slice line into a `Vec`.
    pub fn u64_vec(&mut self, tag: &str) -> Option<Vec<u64>> {
        let mut toks = self.field(tag)?.split(' ');
        let n: usize = toks.next()?.parse().ok()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(toks.next()?.parse().ok()?);
        }
        if toks.next().is_some() {
            return None;
        }
        Some(out)
    }

    /// Read a single-token string line.
    pub fn token(&mut self, tag: &str) -> Option<&'a str> {
        let rest = self.field(tag)?;
        if StateWriter::tag_ok(rest) {
            Some(rest)
        } else {
            None
        }
    }

    /// Succeeds only if every line has been consumed — trailing garbage is
    /// a corrupt snapshot, not padding.
    pub fn finished(&mut self) -> Option<()> {
        if self.lines.next().is_none() {
            Some(())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = StateWriter::new();
        w.u64("a", u64::MAX);
        w.usize("b", 42);
        w.u32("c", 7);
        w.bool("d", true);
        w.bool("e", false);
        w.token("f", "Cpu");
        let text = w.finish();

        let mut r = StateReader::new(&text);
        assert_eq!(r.u64("a"), Some(u64::MAX));
        assert_eq!(r.usize("b"), Some(42));
        assert_eq!(r.u32("c"), Some(7));
        assert_eq!(r.bool("d"), Some(true));
        assert_eq!(r.bool("e"), Some(false));
        assert_eq!(r.token("f"), Some("Cpu"));
        assert!(r.finished().is_some());
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        let specials = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload
            1.0 / 3.0,
        ];
        let mut w = StateWriter::new();
        for v in specials {
            w.f64("v", v);
        }
        let text = w.finish();
        let mut r = StateReader::new(&text);
        for v in specials {
            assert_eq!(r.f64("v").unwrap().to_bits(), v.to_bits());
        }
        assert!(r.finished().is_some());
    }

    #[test]
    fn option_round_trip() {
        let mut w = StateWriter::new();
        w.opt_f64("a", None);
        w.opt_f64("b", Some(-0.0));
        w.opt_u64("c", None);
        w.opt_u64("d", Some(9));
        let text = w.finish();
        let mut r = StateReader::new(&text);
        assert_eq!(r.opt_f64("a"), Some(None));
        assert_eq!(
            r.opt_f64("b").unwrap().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(r.opt_u64("c"), Some(None));
        assert_eq!(r.opt_u64("d"), Some(Some(9)));
    }

    #[test]
    fn slice_round_trip() {
        let mut w = StateWriter::new();
        w.f64_slice("xs", &[1.5, -0.0, f64::NAN]);
        w.f64_slice("empty", &[]);
        w.u64_slice("ns", &[3, 2, 1]);
        let text = w.finish();
        let mut r = StateReader::new(&text);
        let xs = r.f64_vec("xs").unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[1].to_bits(), (-0.0f64).to_bits());
        assert!(xs[2].is_nan());
        assert_eq!(r.f64_vec("empty").unwrap(), Vec::<f64>::new());
        assert_eq!(r.u64_vec("ns").unwrap(), vec![3, 2, 1]);
        assert!(r.finished().is_some());
    }

    #[test]
    fn tag_mismatch_is_none() {
        let mut w = StateWriter::new();
        w.u64("right", 1);
        let text = w.finish();
        let mut r = StateReader::new(&text);
        assert_eq!(r.u64("wrong"), None);
    }

    #[test]
    fn malformed_values_are_none() {
        for line in [
            "x",                      // no value
            "x 12 34",                // trailing token on scalar parse
            "x deadbeef",             // f64 hex too short
            "x zzzzzzzzzzzzzzzz",     // f64 not hex
            "x 2 3ff0000000000000",   // slice count mismatch
            "x maybe 123",            // bad option discriminant
        ] {
            let mut r = StateReader::new(line);
            assert!(r.u64("x").is_none(), "u64 accepted {line:?}");
            let mut r = StateReader::new(line);
            assert!(r.f64("x").is_none(), "f64 accepted {line:?}");
            let mut r = StateReader::new(line);
            assert!(r.f64_vec("x").is_none(), "f64_vec accepted {line:?}");
            let mut r = StateReader::new(line);
            assert!(r.opt_u64("x").is_none(), "opt_u64 accepted {line:?}");
        }
    }

    #[test]
    fn truncated_input_is_none() {
        let mut r = StateReader::new("");
        assert_eq!(r.u64("x"), None);
        assert!(StateReader::new("").finished().is_some());
    }

    #[test]
    fn trailing_garbage_fails_finished() {
        let mut w = StateWriter::new();
        w.u64("a", 1);
        w.u64("b", 2);
        let text = w.finish();
        let mut r = StateReader::new(&text);
        assert_eq!(r.u64("a"), Some(1));
        assert!(r.finished().is_none());
    }

    #[test]
    #[should_panic(expected = "printable word")]
    fn token_with_space_panics() {
        StateWriter::new().token("t", "two words");
    }
}

//! Streaming statistics.
//!
//! The evaluation metrics need long-run averages (PPE is the run-average
//! power divided by the provisioned power, Eq. 4) and geometric means (the
//! total speedup is the geometric mean of the per-component speedups,
//! Eq. 3). [`OnlineStats`] implements Welford's numerically stable one-pass
//! algorithm so a 200 ms run at a 100 ns tick (2 million samples per signal)
//! can be summarized without storing the samples.

/// One-pass mean / variance / min / max accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than 2 samples).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    #[inline]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    #[inline]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    ///
    /// Uses Chan et al.'s parallel update so chiplet-parallel workers can
    /// each keep a local accumulator and combine at the quantum barrier.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Geometric mean of a slice of positive values.
///
/// Used for Eq. 3 (`S_total = cbrt(S_CPU · S_GPU · S_Accel)`) and for
/// averaging speedups across the test suite, as is conventional for speedup
/// ratios. Returns 0.0 for an empty slice; panics in debug builds on
/// non-positive inputs.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            debug_assert!(v > 0.0, "geometric mean of non-positive value {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice (0.0 when empty).
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_sequence() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_matches_sequential() {
        let mut rng = crate::rng::DeterministicRng::new(21);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.uniform(-5.0, 20.0)).collect();

        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));

        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..3_333].iter().for_each(|&x| a.push(x));
        xs[3_333..].iter().for_each(|&x| b.push(x));
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);

        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 2);
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 8.0]) - 8.0f64.sqrt()).abs() < 1e-12);
        // Eq. 3 example: cbrt(1.1 * 1.2 * 1.3)
        let s = geometric_mean(&[1.1, 1.2, 1.3]);
        assert!((s - (1.1f64 * 1.2 * 1.3).cbrt()).abs() < 1e-12);
    }

    #[test]
    fn geomean_le_arithmetic() {
        let vals = [0.5, 1.0, 2.0, 4.0, 7.5];
        assert!(geometric_mean(&vals) <= arithmetic_mean(&vals) + 1e-12);
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}

//! Nanosecond-resolution simulated time.
//!
//! All simulators in the workspace advance on a fixed tick expressed as a
//! [`SimDuration`]; absolute instants are [`SimTime`]. Both wrap a `u64`
//! nanosecond count, which covers ~584 years of simulated time — far beyond
//! the 200 ms runs in the paper — without drift or floating-point rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// One nanosecond, the base unit of simulated time.
pub const NANOSECOND: SimDuration = SimDuration::from_nanos(1);
/// One microsecond (1 000 ns). The HCAPP global control period is 1 µs.
pub const MICROSECOND: SimDuration = SimDuration::from_nanos(1_000);
/// One millisecond (1 000 000 ns). The software-like control period is 10 ms.
pub const MILLISECOND: SimDuration = SimDuration::from_nanos(1_000_000);
/// One second.
pub const SECOND: SimDuration = SimDuration::from_nanos(1_000_000_000);

/// An absolute instant in simulated time, measured in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from a raw nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// The raw nanosecond count since simulation start.
    ///
    /// This is the unit of the `t_ns` key in exported `hcapp.trace` JSONL
    /// (`hcapp-telemetry`); changing it is a schema version bump, not just
    /// an internal refactor.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Duration elapsed since an earlier instant.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// Whether this instant lies on a boundary of `period` (i.e. `t % period == 0`).
    ///
    /// Used by the coordinator to decide when a controller with a given
    /// control period fires.
    #[inline]
    pub fn is_multiple_of(self, period: SimDuration) -> bool {
        period.0 != 0 && self.0.is_multiple_of(period.0)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from a raw nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from (fractional) seconds, rounding to the nearest
    /// nanosecond.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative duration");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// This duration in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Whether this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer number of ticks of length `tick` in this duration.
    ///
    /// # Panics
    /// Panics if `tick` is zero; debug-asserts that `tick` divides `self`
    /// exactly (simulation schedules are designed so control periods are
    /// integer multiples of the tick).
    #[inline]
    pub fn ticks(self, tick: SimDuration) -> u64 {
        assert!(tick.0 != 0, "zero tick");
        debug_assert!(
            self.0.is_multiple_of(tick.0),
            "duration {self:?} not an integer multiple of tick {tick:?}"
        );
        self.0 / tick.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// Integer quotient of two durations (how many `rhs` fit in `self`).
    type Output = u64;
    #[inline]
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000) {
        write!(f, "{:.3}s", ns as f64 * 1e-9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 * 1e-6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 * 1e-3)
    } else {
        write!(f, "{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(10).as_nanos(), 10_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(5) + SimDuration::from_micros(7);
        assert_eq!(t.as_nanos(), 12_000);
        assert_eq!(
            (t - SimTime::from_micros(2)).as_nanos(),
            SimDuration::from_micros(10).as_nanos()
        );
        let mut d = SimDuration::from_micros(4);
        d += SimDuration::from_micros(1);
        assert_eq!(d, SimDuration::from_micros(5));
        d -= SimDuration::from_micros(2);
        assert_eq!(d, SimDuration::from_micros(3));
        assert_eq!(d * 3, SimDuration::from_micros(9));
        assert_eq!(SimDuration::from_micros(9) / SimDuration::from_micros(2), 4);
        assert_eq!(
            SimDuration::from_micros(9) % SimDuration::from_micros(2),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn tick_counting() {
        let period = SimDuration::from_micros(1);
        let tick = SimDuration::from_nanos(100);
        assert_eq!(period.ticks(tick), 10);
    }

    #[test]
    fn boundary_detection() {
        let period = SimDuration::from_micros(1);
        assert!(SimTime::ZERO.is_multiple_of(period));
        assert!(SimTime::from_nanos(2_000).is_multiple_of(period));
        assert!(!SimTime::from_nanos(2_500).is_multiple_of(period));
        assert!(!SimTime::from_nanos(500).is_multiple_of(SimDuration::ZERO));
    }

    #[test]
    fn seconds_conversion() {
        let t = SimTime::from_millis(200);
        assert!((t.as_secs_f64() - 0.2).abs() < 1e-12);
        assert!((t.as_micros_f64() - 200_000.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(20)), "20.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(10)), "10.000ms");
        assert_eq!(format!("{}", SimDuration::from_millis(1_500)), "1.500s");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_micros(1);
        let b = SimDuration::from_micros(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_sub(a), a);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }
}

//! Physical-quantity newtypes.
//!
//! The controllers and component simulators exchange voltages, powers and
//! frequencies. Wrapping them in newtypes catches unit mix-ups at compile
//! time (e.g. feeding a power where a voltage is expected) while keeping the
//! runtime representation a bare `f64`.
//!
//! Only the operations that are physically meaningful are implemented:
//! same-unit addition/subtraction, scaling by dimensionless `f64`, and
//! ratios of same-unit quantities (which are dimensionless).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Construct from a raw `f64` value in base units.
            #[inline]
            pub const fn new(v: f64) -> Self {
                $name(v)
            }

            /// The raw `f64` value in base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// The larger of two quantities.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// The smaller of two quantities.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// True if the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two same-unit quantities (dimensionless).
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|x| x.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*}{}", prec, self.0, $suffix)
                } else {
                    write!(f, "{:.4}{}", self.0, $suffix)
                }
            }
        }
    };
}

unit!(
    /// An electric potential in volts.
    ///
    /// The global voltage is the "universal language" HCAPP uses to
    /// communicate across the power supply network (§1 of the paper).
    Volt,
    "V"
);

unit!(
    /// A power in watts. Package budgets in the paper are 100 W.
    Watt,
    "W"
);

unit!(
    /// A frequency in hertz. Component clocks are derived from the local
    /// voltage through adaptive clocking.
    Hertz,
    "Hz"
);

impl Hertz {
    /// Construct from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Construct from gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// This frequency in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 * 1e-9
    }
}

impl Watt {
    /// Energy (in joules) dissipated at this power over `secs` seconds.
    #[inline]
    pub fn joules_over(self, secs: f64) -> f64 {
        self.0 * secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ratio() {
        let a = Watt::new(60.0);
        let b = Watt::new(40.0);
        assert_eq!((a + b).value(), 100.0);
        assert_eq!((a - b).value(), 20.0);
        assert_eq!((a * 0.5).value(), 30.0);
        assert_eq!((0.5 * a).value(), 30.0);
        assert_eq!((a / 2.0).value(), 30.0);
        assert!((a / b - 1.5).abs() < 1e-12);
        assert_eq!((-b).value(), -40.0);
    }

    #[test]
    fn clamp_minmax() {
        let v = Volt::new(1.4);
        assert_eq!(v.clamp(Volt::new(0.6), Volt::new(1.2)), Volt::new(1.2));
        assert_eq!(Volt::new(0.5).max(Volt::new(0.7)), Volt::new(0.7));
        assert_eq!(Volt::new(0.5).min(Volt::new(0.7)), Volt::new(0.5));
        assert_eq!(Volt::new(-0.5).abs(), Volt::new(0.5));
    }

    #[test]
    fn sums() {
        let total: Watt = [Watt::new(1.0), Watt::new(2.5), Watt::new(3.5)]
            .into_iter()
            .sum();
        assert_eq!(total.value(), 7.0);
    }

    #[test]
    fn frequency_helpers() {
        assert_eq!(Hertz::from_ghz(2.0).value(), 2e9);
        assert_eq!(Hertz::from_mhz(700.0).value(), 7e8);
        assert!((Hertz::from_mhz(700.0).as_ghz() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Volt::new(0.95)), "0.9500V");
        assert_eq!(format!("{:.1}", Watt::new(100.0)), "100.0W");
    }

    #[test]
    fn energy() {
        assert!((Watt::new(50.0).joules_over(2.0) - 100.0).abs() < 1e-12);
    }
}

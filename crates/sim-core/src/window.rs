//! Sliding-window power-limit evaluation.
//!
//! Power limits in the paper are specified as *"at most `P` watts averaged
//! over window `W`"* — 100 W over 20 µs for the package-pin limit (§5.1) and
//! 100 W over 1 ms for the off-package VR limit (§5.2). Evaluating such a
//! limit over a multi-hundred-millisecond run requires the windowed average
//! at every sample, so both trackers here are O(1) per sample:
//!
//! * [`SlidingWindowAvg`] — ring buffer with a running sum (periodically
//!   recomputed to bound floating-point drift).
//! * [`WindowedMaxTracker`] — feeds a [`SlidingWindowAvg`] and keeps the
//!   maximum windowed average seen, which is exactly the "maximum power /
//!   limit" metric of Figures 4 and 7.

/// Running average over the last `capacity` samples (a fixed time window when
/// samples arrive on a fixed tick).
#[derive(Debug, Clone)]
pub struct SlidingWindowAvg {
    buf: Vec<f64>,
    head: usize,
    filled: usize,
    sum: f64,
    /// Pushes since the last exact-sum recomputation.
    since_resync: usize,
}

impl SlidingWindowAvg {
    /// Create a window holding `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindowAvg {
            buf: vec![0.0; capacity],
            head: 0,
            filled: 0,
            sum: 0.0,
            since_resync: 0,
        }
    }

    /// Number of samples the window holds when full.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of samples currently in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True when no samples have been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// True once the window has seen at least `capacity` samples.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.filled == self.buf.len()
    }

    /// Push a sample, evicting the oldest if full.
    #[inline]
    pub fn push(&mut self, sample: f64) {
        let cap = self.buf.len();
        if self.filled == cap {
            self.sum -= self.buf[self.head];
        } else {
            self.filled += 1;
        }
        self.buf[self.head] = sample;
        self.sum += sample;
        self.head = (self.head + 1) % cap;

        // A running +=/-= sum accumulates rounding error over hundreds of
        // millions of pushes; recompute exactly once per ~64 window turnovers.
        self.since_resync += 1;
        if self.since_resync >= cap.saturating_mul(64).max(1 << 16) {
            self.sum = self.buf[..self.filled].iter().sum();
            self.since_resync = 0;
        }
    }

    /// Average over the samples currently held (partial window at startup).
    ///
    /// Returns 0.0 if empty.
    #[inline]
    pub fn average(&self) -> f64 {
        if self.filled == 0 {
            0.0
        } else {
            self.sum / self.filled as f64
        }
    }

    /// Average over the full window, or `None` until the window has filled.
    ///
    /// Power limits are only meaningful over their full specification window,
    /// so limit evaluation uses this accessor.
    #[inline]
    pub fn full_average(&self) -> Option<f64> {
        if self.is_full() {
            Some(self.sum / self.buf.len() as f64)
        } else {
            None
        }
    }

    /// Drop all samples.
    pub fn reset(&mut self) {
        self.buf.fill(0.0);
        self.head = 0;
        self.filled = 0;
        self.sum = 0.0;
        self.since_resync = 0;
    }
}

/// Tracks the maximum windowed average of a sample stream.
///
/// This is the "maximum power relative to the power limit" metric of
/// Figures 4 and 7: feed instantaneous power every tick, read
/// [`WindowedMaxTracker::max`] at the end of the run.
///
/// ```
/// use hcapp_sim_core::window::WindowedMaxTracker;
///
/// // A 4-sample window over a stream with a 2-sample spike: the spike only
/// // half-fills the window, so the tracked max is the blended average.
/// let mut tracker = WindowedMaxTracker::new(4);
/// for p in [50.0, 50.0, 50.0, 50.0, 150.0, 150.0, 50.0, 50.0] {
///     tracker.push(p);
/// }
/// assert_eq!(tracker.max(), Some(100.0));
/// ```
#[derive(Debug, Clone)]
pub struct WindowedMaxTracker {
    window: SlidingWindowAvg,
    max: f64,
    seen_full: bool,
}

impl WindowedMaxTracker {
    /// Track the max average over windows of `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        WindowedMaxTracker {
            window: SlidingWindowAvg::new(capacity),
            max: f64::NEG_INFINITY,
            seen_full: false,
        }
    }

    /// Push one sample.
    #[inline]
    pub fn push(&mut self, sample: f64) {
        self.window.push(sample);
        if let Some(avg) = self.window.full_average() {
            self.seen_full = true;
            if avg > self.max {
                self.max = avg;
            }
        }
    }

    /// Maximum full-window average observed, or `None` if the stream was
    /// shorter than one window.
    #[inline]
    pub fn max(&self) -> Option<f64> {
        if self.seen_full {
            Some(self.max)
        } else {
            None
        }
    }

    /// Window capacity in samples.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.window.capacity()
    }

    /// Reset to the empty state.
    pub fn reset(&mut self) {
        self.window.reset();
        self.max = f64::NEG_INFINITY;
        self.seen_full = false;
    }
}

impl crate::state::Snapshot for SlidingWindowAvg {
    fn save_state(&self, w: &mut crate::state::StateWriter) {
        w.f64_slice("win.buf", &self.buf);
        w.usize("win.head", self.head);
        w.usize("win.filled", self.filled);
        w.f64("win.sum", self.sum);
        w.usize("win.resync", self.since_resync);
    }

    fn load_state(&mut self, r: &mut crate::state::StateReader<'_>) -> Option<()> {
        let buf = r.f64_vec("win.buf")?;
        if buf.len() != self.buf.len() {
            return None;
        }
        self.buf = buf;
        self.head = r.usize("win.head")?;
        self.filled = r.usize("win.filled")?;
        if self.head >= self.buf.len() || self.filled > self.buf.len() {
            return None;
        }
        self.sum = r.f64("win.sum")?;
        self.since_resync = r.usize("win.resync")?;
        Some(())
    }
}

impl crate::state::Snapshot for WindowedMaxTracker {
    fn save_state(&self, w: &mut crate::state::StateWriter) {
        self.window.save_state(w);
        w.f64("win.max", self.max);
        w.bool("win.seen_full", self.seen_full);
    }

    fn load_state(&mut self, r: &mut crate::state::StateReader<'_>) -> Option<()> {
        self.window.load_state(r)?;
        self.max = r.f64("win.max")?;
        self.seen_full = r.bool("win.seen_full")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = SlidingWindowAvg::new(0);
    }

    #[test]
    fn partial_then_full_average() {
        let mut w = SlidingWindowAvg::new(4);
        assert!(w.is_empty());
        assert_eq!(w.average(), 0.0);
        assert_eq!(w.full_average(), None);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.len(), 2);
        assert!((w.average() - 3.0).abs() < 1e-12);
        assert_eq!(w.full_average(), None);
        w.push(6.0);
        w.push(8.0);
        assert!(w.is_full());
        assert!((w.full_average().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_fifo() {
        let mut w = SlidingWindowAvg::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            w.push(x);
        }
        // Window now holds [2, 3, 4].
        assert!((w.full_average().unwrap() - 3.0).abs() < 1e-12);
        w.push(10.0); // [3, 4, 10]
        assert!((w.full_average().unwrap() - 17.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn long_stream_matches_naive() {
        let cap = 37;
        let mut w = SlidingWindowAvg::new(cap);
        let mut naive: Vec<f64> = Vec::new();
        let mut rng = crate::rng::DeterministicRng::new(99);
        for i in 0..200_000 {
            let x = rng.uniform(0.0, 150.0);
            w.push(x);
            naive.push(x);
            if i >= cap - 1 {
                let start = naive.len() - cap;
                let expect: f64 = naive[start..].iter().sum::<f64>() / cap as f64;
                let got = w.full_average().unwrap();
                assert!(
                    (got - expect).abs() < 1e-6,
                    "drift at {i}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn tracker_requires_full_window() {
        let mut t = WindowedMaxTracker::new(5);
        for _ in 0..4 {
            t.push(100.0);
        }
        assert_eq!(t.max(), None);
        t.push(100.0);
        assert!((t.max().unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_finds_burst() {
        // 100 samples of 50 W with a 10-sample burst of 150 W in the middle:
        // the max 10-sample window average is exactly 150.
        let mut t = WindowedMaxTracker::new(10);
        for i in 0..100 {
            let p = if (45..55).contains(&i) { 150.0 } else { 50.0 };
            t.push(p);
        }
        assert!((t.max().unwrap() - 150.0).abs() < 1e-9);

        // A 5-sample burst only half-fills the window: max average is 100.
        let mut t = WindowedMaxTracker::new(10);
        for i in 0..100 {
            let p = if (45..50).contains(&i) { 150.0 } else { 50.0 };
            t.push(p);
        }
        assert!((t.max().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn tracker_reset() {
        let mut t = WindowedMaxTracker::new(2);
        t.push(10.0);
        t.push(20.0);
        assert!(t.max().is_some());
        t.reset();
        assert_eq!(t.max(), None);
        t.push(1.0);
        t.push(3.0);
        assert!((t.max().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn window_reset() {
        let mut w = SlidingWindowAvg::new(3);
        w.push(5.0);
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.average(), 0.0);
    }
}

//! Property-based tests for the simulation kernel.
//!
//! Compiled only with `--features proptest` so the default `cargo test -q`
//! stays lean; the suite runs against the local proptest shim
//! (`crates/proptest-shim`), so no registry access is needed either way.
#![cfg(feature = "proptest")]

use hcapp_sim_core::rng::DeterministicRng;
use hcapp_sim_core::series::TimeSeries;
use hcapp_sim_core::stats::{geometric_mean, OnlineStats};
use hcapp_sim_core::time::{SimDuration, SimTime};
use hcapp_sim_core::window::{SlidingWindowAvg, WindowedMaxTracker};
use proptest::prelude::*;

proptest! {
    /// Window average always lies between the min and max of its contents.
    #[test]
    fn window_average_bounded(samples in prop::collection::vec(0.0f64..1000.0, 1..200),
                              cap in 1usize..50) {
        let mut w = SlidingWindowAvg::new(cap);
        for &s in &samples {
            w.push(s);
        }
        let held = &samples[samples.len().saturating_sub(cap)..];
        let lo = held.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = held.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = w.average();
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9,
            "avg {avg} outside [{lo}, {hi}]");
    }

    /// The windowed max never exceeds the global max sample and never falls
    /// below the global min (once a full window exists).
    #[test]
    fn windowed_max_bounded(samples in prop::collection::vec(0.0f64..500.0, 10..300),
                            cap in 1usize..10) {
        let mut t = WindowedMaxTracker::new(cap);
        for &s in &samples {
            t.push(s);
        }
        let max = t.max().unwrap();
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(max <= hi + 1e-9);
        prop_assert!(max >= lo - 1e-9);
    }

    /// Larger windows can only reduce (or keep) the observed max — this is
    /// the core premise of Figure 2: slow limits hide fast peaks.
    #[test]
    fn larger_window_never_larger_max(samples in prop::collection::vec(0.0f64..500.0, 50..300)) {
        let mut small = WindowedMaxTracker::new(4);
        let mut large = WindowedMaxTracker::new(16);
        for &s in &samples {
            small.push(s);
            large.push(s);
        }
        if let (Some(ms), Some(ml)) = (small.max(), large.max()) {
            prop_assert!(ml <= ms + 1e-9, "large-window max {ml} > small-window max {ms}");
        }
    }

    /// Welford merge is equivalent to sequential accumulation.
    #[test]
    fn stats_merge_equivalence(xs in prop::collection::vec(-1e3f64..1e3, 2..200),
                               split in 1usize..100) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
    }

    /// Geometric mean is scale-covariant: gm(k*x) = k*gm(x).
    #[test]
    fn geomean_scale(xs in prop::collection::vec(0.01f64..100.0, 1..20), k in 0.1f64..10.0) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let lhs = geometric_mean(&scaled);
        let rhs = k * geometric_mean(&xs);
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
    }

    /// RNG streams derived from distinct ids do not collide on their first
    /// 16 outputs.
    #[test]
    fn rng_streams_distinct(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let mut ra = DeterministicRng::derive(seed, a);
        let mut rb = DeterministicRng::derive(seed, b);
        let matches = (0..16).filter(|_| ra.next_u64() == rb.next_u64()).count();
        prop_assert!(matches <= 1);
    }

    /// Time arithmetic: (t + d) - t == d for all representable values.
    #[test]
    fn time_roundtrip(t in 0u64..1_000_000_000_000, d in 0u64..1_000_000_000) {
        let t0 = SimTime::from_nanos(t);
        let d0 = SimDuration::from_nanos(d);
        prop_assert_eq!((t0 + d0) - t0, d0);
    }

    /// A windowed series has the same length and its max never exceeds the
    /// raw max.
    #[test]
    fn series_window_invariants(vals in prop::collection::vec(0.0f64..200.0, 4..200),
                                win in 1u64..32) {
        let s = TimeSeries::from_values(SimDuration::from_micros(1), vals);
        let w = s.windowed(SimDuration::from_micros(win));
        prop_assert_eq!(w.len(), s.len());
        if let (Some(wm), Some(sm)) = (w.max(), s.max()) {
            prop_assert!(wm <= sm + 1e-9);
        }
        // Means agree to within the startup transient contribution.
        prop_assert!((w.mean() - s.mean()).abs() <= s.max().unwrap_or(0.0));
    }
}

//! The committed findings baseline.
//!
//! `simlint.baseline.json` at the workspace root records the legacy
//! findings that predate a rule (or were judged acceptable wholesale when
//! a rule landed). The gate then fails only on *new* findings, while the
//! allowed legacy set stays in one auditable, diffable file instead of
//! being sprinkled as allow comments.
//!
//! Identity is `(rule code, file, excerpt)` with a count — deliberately
//! **not** the line number, so unrelated edits that shift code never
//! resurrect a baselined finding, while changing the offending line
//! itself (the excerpt) does surface it again.
//!
//! The format is a small fixed-schema JSON document; reading and writing
//! are hand-rolled here because simlint is zero-dependency by rule L4.

use std::collections::BTreeMap;
use std::path::Path;

use crate::Finding;

pub const BASELINE_FILE: &str = "simlint.baseline.json";
pub const SCHEMA: &str = "simlint-baseline-v1";

/// One baselined finding class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    pub excerpt: String,
    pub count: usize,
}

#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Load `<root>/simlint.baseline.json`; `None` when absent or
    /// unparseable (an unreadable baseline must fail open to "everything
    /// is new", never silently allow).
    pub fn load(root: &Path) -> Option<Baseline> {
        let text = std::fs::read_to_string(root.join(BASELINE_FILE)).ok()?;
        parse(&text)
    }

    /// Subtract the baseline: returns the findings not covered. Within
    /// one `(rule, file, excerpt)` class the first `count` occurrences
    /// (in the caller's sorted order) are considered baselined.
    pub fn filter_new(&self, findings: Vec<Finding>) -> Vec<Finding> {
        let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget
                .entry((e.rule.clone(), e.file.clone(), e.excerpt.clone()))
                .or_default() += e.count;
        }
        findings
            .into_iter()
            .filter(|f| {
                let key = (
                    f.rule.code().to_string(),
                    f.file.clone(),
                    f.excerpt.clone(),
                );
                match budget.get_mut(&key) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                }
            })
            .collect()
    }

    /// Aggregate `findings` into baseline entries.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts
                .entry((
                    f.rule.code().to_string(),
                    f.file.clone(),
                    f.excerpt.clone(),
                ))
                .or_default() += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((rule, file, excerpt), count)| Entry {
                    rule,
                    file,
                    excerpt,
                    count,
                })
                .collect(),
        }
    }

    /// Render the committed JSON form (stable ordering, one entry per
    /// line, so baseline diffs review like code).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"count\": {}, \"excerpt\": {}}}",
                quote(&e.rule),
                quote(&e.file),
                e.count,
                quote(&e.excerpt)
            ));
        }
        if !self.entries.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }

    pub fn total(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }
}

/// JSON string escaping for the subset we emit.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value model — just enough for the baseline schema.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }
}

fn parse(text: &str) -> Option<Baseline> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    let doc = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return None;
    }
    if doc.get("schema")?.as_str()? != SCHEMA {
        return None;
    }
    let Json::Arr(items) = doc.get("entries")? else {
        return None;
    };
    let mut entries = Vec::new();
    for item in items {
        entries.push(Entry {
            rule: item.get("rule")?.as_str()?.to_string(),
            file: item.get("file")?.as_str()?.to_string(),
            excerpt: item.get("excerpt")?.as_str()?.to_string(),
            count: item.get("count")?.as_usize()?,
        });
    }
    Some(Baseline { entries })
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.ws();
        match self.bytes.get(self.pos)? {
            b'"' => self.string().map(Json::Str),
            b'{' => self.object(),
            b'[' => self.array(),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(v)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting at b.
                    let extra = match b {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        _ => 3,
                    };
                    let start = self.pos - 1;
                    self.pos += extra;
                    out.push_str(std::str::from_utf8(self.bytes.get(start..self.pos)?).ok()?);
                }
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        if !self.eat(b'[') {
            return None;
        }
        let mut items = Vec::new();
        self.ws();
        if self.eat(b']') {
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.ws();
            if self.eat(b']') {
                return Some(Json::Arr(items));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        if !self.eat(b'{') {
            return None;
        }
        let mut fields = Vec::new();
        self.ws();
        if self.eat(b'}') {
            return Some(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if !self.eat(b':') {
                return None;
            }
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            if self.eat(b'}') {
                return Some(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn finding(rule: Rule, file: &str, line: usize, excerpt: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line,
            excerpt: excerpt.into(),
            note: String::new(),
        }
    }

    #[test]
    fn round_trip_through_render_and_parse() {
        let findings = vec![
            finding(Rule::NoPanic, "crates/core/src/a.rs", 3, "x.unwrap();"),
            finding(Rule::NoPanic, "crates/core/src/a.rs", 9, "x.unwrap();"),
            finding(Rule::TimeDomain, "crates/pdn/src/b.rs", 1, "if v == 0.9 {"),
        ];
        let base = Baseline::from_findings(&findings);
        let text = base.render();
        let parsed = parse(&text).expect("rendered baseline parses");
        assert_eq!(parsed.entries, base.entries);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn filter_subtracts_by_count() {
        let findings = vec![
            finding(Rule::NoPanic, "f.rs", 3, "x.unwrap();"),
            finding(Rule::NoPanic, "f.rs", 9, "x.unwrap();"),
            finding(Rule::NoPanic, "f.rs", 12, "y.unwrap();"),
        ];
        // Baseline covers ONE x.unwrap() occurrence and nothing else.
        let base = Baseline {
            entries: vec![Entry {
                rule: "L2".into(),
                file: "f.rs".into(),
                excerpt: "x.unwrap();".into(),
                count: 1,
            }],
        };
        let fresh = base.filter_new(findings);
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh[0].line, 9, "first occurrence consumed the budget");
        assert_eq!(fresh[1].excerpt, "y.unwrap();");
    }

    #[test]
    fn line_drift_does_not_resurrect() {
        let base = Baseline {
            entries: vec![Entry {
                rule: "L6".into(),
                file: "f.rs".into(),
                excerpt: "v[0] += 1.0;".into(),
                count: 1,
            }],
        };
        let moved = vec![finding(Rule::PanicReachability, "f.rs", 999, "v[0] += 1.0;")];
        assert!(base.filter_new(moved).is_empty());
    }

    #[test]
    fn escapes_survive() {
        let findings = vec![finding(
            Rule::Determinism,
            "f.rs",
            1,
            "let s = \"tab\\there\";",
        )];
        let base = Baseline::from_findings(&findings);
        let parsed = parse(&base.render()).unwrap();
        assert_eq!(parsed.entries[0].excerpt, "let s = \"tab\\there\";");
    }

    #[test]
    fn wrong_schema_rejected() {
        assert!(parse("{\"schema\": \"other\", \"entries\": []}").is_none());
        assert!(parse("not json").is_none());
    }
}

//! Workspace symbol table and approximate call graph.
//!
//! Symbols are the `fn` items extracted by [`crate::parser`]; edges are
//! *name-based*: a call site `foo(…)`, `Type::foo(…)` or `recv.foo(…)`
//! creates an edge to every workspace fn a conservative resolution rule
//! matches. There is no type inference, so the graph **over-approximates**
//! reachability — which is the right polarity for L6: a panic path the
//! graph reports may be a false positive, but a real panic path is never
//! silently dropped by failing to resolve a call. The resolution rules
//! (and the remaining false-negative sources: fn pointers, closures
//! escaping their defining fn, macro-generated calls) are documented in
//! DESIGN.md.
//!
//! Resolution, from most to least specific:
//! - `Type::foo(` → fns named `foo` whose enclosing `impl` is `Type`;
//!   falls back to all fns named `foo` if no such method exists;
//! - `.foo(` (method call) → all *methods* named `foo` (fns with an
//!   enclosing impl);
//! - bare `foo(` → all *free* fns named `foo`; falls back to all fns
//!   named `foo` (covers `use Type::foo`-style imports).

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

use crate::lexer::{TokKind, TokenFile};
use crate::parser::{parse_items, Item, ItemKind};

/// One lexed + parsed source file.
pub struct ParsedFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    pub crate_name: String,
    pub tf: TokenFile,
    pub items: Vec<Item>,
    pub whole_file_is_test: bool,
}

impl ParsedFile {
    pub fn new(rel: String, crate_name: String, src: &str, whole_file_is_test: bool) -> ParsedFile {
        let tf = TokenFile::new(src);
        let items = parse_items(&tf, whole_file_is_test);
        ParsedFile {
            rel,
            crate_name,
            tf,
            items,
            whole_file_is_test,
        }
    }
}

/// A fn symbol in the graph. Indexes refer back into the owning
/// [`Workspace`].
#[derive(Debug, Clone)]
pub struct Symbol {
    pub file_idx: usize,
    pub item_idx: usize,
    pub name: String,
    pub parent_impl: Option<String>,
    pub is_test: bool,
    pub line: usize,
}

/// One resolved call edge out of a fn body.
#[derive(Debug, Clone, Copy)]
struct Edge {
    callee: usize,
    /// 1-based source line of the call site.
    line: usize,
}

/// The parsed workspace plus its call graph.
pub struct Workspace {
    pub files: Vec<ParsedFile>,
    pub symbols: Vec<Symbol>,
    edges: Vec<Vec<Edge>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// How a call site names its target, before resolution.
enum CallShape {
    /// `foo(` with no path or receiver.
    Bare,
    /// `Type::foo(` — `Type` is the last path segment before the fn name.
    Qualified(String),
    /// `.foo(`.
    Method,
}

/// Keywords that look like calls when followed by `(`.
fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while" | "for" | "match" | "loop" | "return" | "fn" | "impl" | "where" | "in"
            | "as" | "let" | "else" | "move" | "mut" | "ref" | "unsafe" | "async" | "await"
            | "box" | "dyn" | "pub" | "use" | "mod" | "break" | "continue"
    )
}

impl Workspace {
    /// Build the symbol table and call graph over `files`.
    pub fn build(files: Vec<ParsedFile>) -> Workspace {
        let mut symbols = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.items.iter().enumerate() {
                if item.kind != ItemKind::Fn {
                    continue;
                }
                let sid = symbols.len();
                symbols.push(Symbol {
                    file_idx: fi,
                    item_idx: ii,
                    name: item.name.clone(),
                    parent_impl: item.parent_impl.clone(),
                    is_test: item.is_test,
                    line: item.line,
                });
                by_name.entry(item.name.clone()).or_default().push(sid);
            }
        }

        let mut ws = Workspace {
            files,
            symbols,
            edges: Vec::new(),
            by_name,
        };
        ws.edges = (0..ws.symbols.len()).map(|s| ws.resolve_calls(s)).collect();
        ws
    }

    /// Convenience: load, lex and parse every non-fixture `.rs` file under
    /// `root` with the same skip rules as the line-based loader.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut rs_files = Vec::new();
        crate::walk_rs_files(root, &mut rs_files);
        let mut files = Vec::new();
        for abs in rs_files {
            let rel = crate::source::rel_to(root, &abs);
            if crate::is_fixture(&rel) {
                continue;
            }
            let src = std::fs::read_to_string(&abs)?;
            files.push(ParsedFile::new(
                rel.clone(),
                crate::crate_name_of(&rel),
                &src,
                crate::whole_file_is_test(&rel),
            ));
        }
        Ok(Workspace::build(files))
    }

    pub fn symbol_item(&self, sid: usize) -> (&ParsedFile, &Item) {
        let s = &self.symbols[sid];
        let f = &self.files[s.file_idx];
        (f, &f.items[s.item_idx])
    }

    /// All symbols whose fn name is `name`.
    pub fn symbols_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Extract and resolve the call sites of symbol `sid`.
    fn resolve_calls(&self, sid: usize) -> Vec<Edge> {
        let (file, item) = self.symbol_item(sid);
        let Some((b0, b1)) = item.body else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let toks = &file.tf.toks;
        let mut i = b0;
        while i < b1 {
            let Some(j) = file.tf.next_code(i) else { break };
            if j >= b1 {
                break;
            }
            i = j + 1;
            if toks[j].kind != TokKind::Ident {
                continue;
            }
            let name = file.tf.text(j);
            if is_call_keyword(name) {
                continue;
            }
            // A call is `ident (` with nothing between; `ident!(…)` is a
            // macro, `ident::<…>(…)` (turbofish) also counts as a call.
            let Some(next) = file.tf.next_code(j + 1) else { break };
            let open = if file.tf.text(next) == "::" {
                // turbofish `ident::<T>(…)`: skip the generic group
                let Some(lt) = file.tf.next_code(next + 1) else { continue };
                if file.tf.text(lt) != "<" {
                    continue; // plain path segment; the *last* segment is
                              // the one followed by `(`, handled on its own
                }
                let close = self.skip_angles(file, lt);
                match file.tf.next_code(close) {
                    Some(p) if file.tf.text(p) == "(" => p,
                    _ => continue,
                }
            } else if file.tf.text(next) == "(" {
                next
            } else {
                continue;
            };
            let _ = open;

            // Classify the shape from the tokens *before* the name.
            let shape = match file.tf.prev_code(j) {
                Some(p) if file.tf.text(p) == "." => CallShape::Method,
                Some(p) if file.tf.text(p) == "::" => {
                    match file.tf.prev_code(p) {
                        Some(q)
                            if toks[q].kind == TokKind::Ident =>
                        {
                            CallShape::Qualified(file.tf.text(q).to_string())
                        }
                        // `<Type as Trait>::foo(` and `>::foo(`: treat as
                        // method-like (match methods by name).
                        _ => CallShape::Method,
                    }
                }
                _ => CallShape::Bare,
            };

            let line = toks[j].line;
            for callee in self.resolve(name, &shape) {
                out.push(Edge { callee, line });
            }
        }
        out
    }

    /// Skip a balanced `< … >` group starting at `lt`; returns the index
    /// past the closing `>` (counting `<`/`>` characters inside composed
    /// punct tokens like `>>`).
    fn skip_angles(&self, file: &ParsedFile, lt: usize) -> usize {
        let mut depth = 0i64;
        let mut k = lt;
        while k < file.tf.toks.len() {
            let t = file.tf.text(k);
            if file.tf.toks[k].kind == TokKind::Punct && t != "->" && t != "=>" {
                depth += t.matches('<').count() as i64;
                depth -= t.matches('>').count() as i64;
                if depth <= 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        k
    }

    /// Apply the resolution rules for one call site. Each shape narrows to
    /// its most plausible target set but falls back to every fn with the
    /// name when the narrow set is empty — over-approximation beats a
    /// dropped edge for a reachability rule.
    fn resolve(&self, name: &str, shape: &CallShape) -> Vec<usize> {
        let all = self.symbols_named(name);
        let narrowed: Vec<usize> = match shape {
            CallShape::Qualified(ty) => all
                .iter()
                .copied()
                .filter(|&s| self.symbols[s].parent_impl.as_deref() == Some(ty.as_str()))
                .collect(),
            CallShape::Method => all
                .iter()
                .copied()
                .filter(|&s| self.symbols[s].parent_impl.is_some())
                .collect(),
            CallShape::Bare => all
                .iter()
                .copied()
                .filter(|&s| self.symbols[s].parent_impl.is_none())
                .collect(),
        };
        if narrowed.is_empty() {
            all.to_vec()
        } else {
            narrowed
        }
    }

    /// Direct callees of `sid` (deduplicated), with the first call line.
    pub fn callees(&self, sid: usize) -> Vec<(usize, usize)> {
        let mut seen = BTreeMap::new();
        for e in &self.edges[sid] {
            seen.entry(e.callee).or_insert(e.line);
        }
        seen.into_iter().collect()
    }

    /// BFS from `roots`; returns, for each reached symbol, the parent it
    /// was reached from and the call-site line (`None` for roots). Test
    /// symbols never extend the frontier: a call that only occurs in test
    /// code does not make its callee "reachable from the hot loop".
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, Option<(usize, usize)>> {
        let mut seen: BTreeMap<usize, Option<(usize, usize)>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &r in roots {
            if self.symbols[r].is_test {
                continue;
            }
            if seen.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(s) = queue.pop_front() {
            for (callee, line) in self.callees(s) {
                if self.symbols[callee].is_test {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(callee) {
                    e.insert(Some((s, line)));
                    queue.push_back(callee);
                }
            }
        }
        seen
    }

    /// Render the call chain `root → … → sid` recorded by
    /// [`Workspace::reachable_from`], as `a → b → c` qualified names.
    pub fn chain_to(
        &self,
        reach: &BTreeMap<usize, Option<(usize, usize)>>,
        sid: usize,
    ) -> String {
        let mut names = Vec::new();
        let mut cur = sid;
        loop {
            let (file, item) = self.symbol_item(cur);
            let _ = file;
            names.push(item.qualified());
            match reach.get(&cur) {
                Some(Some((parent, _))) if names.len() < 24 => cur = *parent,
                _ => break,
            }
        }
        names.reverse();
        names.join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(rel, src)| {
                    ParsedFile::new(
                        rel.to_string(),
                        crate::crate_name_of(rel),
                        src,
                        crate::whole_file_is_test(rel),
                    )
                })
                .collect(),
        )
    }

    fn sid(w: &Workspace, name: &str) -> usize {
        *w.symbols_named(name).first().unwrap_or_else(|| panic!("no symbol {name}"))
    }

    #[test]
    fn direct_and_transitive_reachability() {
        let w = ws(&[(
            "crates/core/src/a.rs",
            "fn root() { mid(); }\nfn mid() { leaf(3); }\nfn leaf(x: u32) -> u32 { x }\nfn island() {}",
        )]);
        let reach = w.reachable_from(&[sid(&w, "root")]);
        assert!(reach.contains_key(&sid(&w, "mid")));
        assert!(reach.contains_key(&sid(&w, "leaf")));
        assert!(!reach.contains_key(&sid(&w, "island")));
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let w = ws(&[(
            "crates/core/src/b.rs",
            "struct P;\nimpl P { fn go(&self) { self.step(); } fn step(&self) {} }\nfn drive(p: &P) { p.go(); }",
        )]);
        let reach = w.reachable_from(&[sid(&w, "drive")]);
        assert!(reach.contains_key(&sid(&w, "go")));
        assert!(reach.contains_key(&sid(&w, "step")));
    }

    #[test]
    fn test_code_does_not_extend_frontier() {
        let w = ws(&[(
            "crates/core/src/c.rs",
            "fn root() {}\n#[cfg(test)]\nmod tests { use super::*; #[test] fn t() { root(); helper(); } fn helper() { victim(); } }\nfn victim() {}",
        )]);
        let reach = w.reachable_from(&[sid(&w, "root")]);
        assert!(!reach.contains_key(&sid(&w, "victim")));
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let w = ws(&[(
            "crates/core/src/d.rs",
            "fn root() { println!(\"{}\", 1); }\nfn println() { victim(); }\nfn victim() {}",
        )]);
        let reach = w.reachable_from(&[sid(&w, "root")]);
        assert!(!reach.contains_key(&sid(&w, "victim")), "println! is a macro, not the fn");
    }

    #[test]
    fn turbofish_calls_resolve() {
        let w = ws(&[(
            "crates/core/src/e.rs",
            "fn root() { convert::<u32>(1); }\nfn convert<T>(v: T) -> T { v }",
        )]);
        let reach = w.reachable_from(&[sid(&w, "root")]);
        assert!(reach.contains_key(&sid(&w, "convert")));
    }

    #[test]
    fn chain_rendering() {
        let w = ws(&[(
            "crates/core/src/f.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}",
        )]);
        let reach = w.reachable_from(&[sid(&w, "a")]);
        assert_eq!(w.chain_to(&reach, sid(&w, "c")), "a -> b -> c");
    }

    #[test]
    fn qualified_calls_resolve() {
        let w = ws(&[(
            "crates/core/src/g.rs",
            "struct Pool;\nimpl Pool { fn spawn() { work(); } }\nfn work() {}\nfn root() { Pool::spawn(); }",
        )]);
        let reach = w.reachable_from(&[sid(&w, "root")]);
        assert!(reach.contains_key(&sid(&w, "spawn")));
        assert!(reach.contains_key(&sid(&w, "work")));
    }
}

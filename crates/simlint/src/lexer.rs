//! A token-level Rust lexer.
//!
//! simlint v1 worked on masked *lines*; the semantic rules (L6–L8) need to
//! see structure that spans lines — function bodies, call expressions, lock
//! scopes — so v2 lexes whole files into a flat token stream with byte
//! spans. The lexer is deliberately total and lossless:
//!
//! * **total** — every input, including malformed Rust, lexes without
//!   error (unknown bytes become one-byte [`TokKind::Punct`] tokens,
//!   unterminated literals run to end of file);
//! * **lossless** — concatenating the span text of every token reproduces
//!   the file byte for byte (`tests/roundtrip.rs` asserts this over the
//!   whole workspace).
//!
//! It stays zero-dependency (rule L4 forbids `syn`/`proc-macro2`): the
//! grammar implemented here is the small subset of Rust's lexical grammar
//! the rules need — comments, all string/char literal forms, numbers,
//! identifiers (including raw identifiers), lifetimes, and multi-byte
//! operators composed greedily so `==`, `::`, `..=`, `->` arrive as single
//! tokens.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword, including raw identifiers (`r#loop`).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`) — an apostrophe with no closing
    /// quote.
    Lifetime,
    /// Numeric literal, including floats, exponents, radix prefixes and
    /// type suffixes (`1_000`, `0x1f`, `2.5e-3_f64`).
    Num,
    /// String literal of any form: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `c"…"`. Includes the delimiters.
    Str,
    /// Char or byte-char literal (`'x'`, `'\n'`, `b'\0'`).
    Char,
    /// `// …` to end of line (excluding the newline). Doc line comments
    /// (`///`, `//!`) included.
    LineComment,
    /// `/* … */`, nested, possibly unterminated at EOF.
    BlockComment,
    /// Operator or punctuation; multi-byte operators are one token.
    Punct,
    /// A run of whitespace (spaces, tabs, newlines).
    Whitespace,
}

impl TokKind {
    /// Tokens that never affect syntax: whitespace and comments.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// One token: a classified byte span of the source. Slice the original
/// text with `&src[tok.start..tok.end]` to recover its exact spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

impl Tok {
    /// The token's text within `src` (the same string that was lexed).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Multi-byte operators, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` completely. See the module docs for the guarantees.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::with_capacity(src.len() / 4),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.out.push(Tok {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advance one byte, counting newlines.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advance one *char* (multi-byte safe).
    fn bump_char(&mut self) {
        let c = self.src[self.pos..]
            .chars()
            .next()
            .expect("invariant: pos is always on a char boundary");
        if c == '\n' {
            self.line += 1;
        }
        self.pos += c.len_utf8();
    }

    fn next_kind(&mut self) -> TokKind {
        let c = self.src[self.pos..]
            .chars()
            .next()
            .expect("invariant: run() only calls next_kind before EOF");

        if c.is_whitespace() {
            while self.pos < self.bytes.len() {
                let c = self.src[self.pos..].chars().next();
                match c {
                    Some(c) if c.is_whitespace() => self.bump_char(),
                    _ => break,
                }
            }
            return TokKind::Whitespace;
        }

        if c == '/' {
            match self.peek(1) {
                Some(b'/') => {
                    while self.peek(0).is_some_and(|b| b != b'\n') {
                        self.bump_char();
                    }
                    return TokKind::LineComment;
                }
                Some(b'*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    while depth > 0 && self.pos < self.bytes.len() {
                        if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                            self.bump();
                            self.bump();
                            depth -= 1;
                        } else if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                            self.bump();
                            self.bump();
                            depth += 1;
                        } else {
                            self.bump_char();
                        }
                    }
                    return TokKind::BlockComment;
                }
                _ => {}
            }
        }

        // Raw identifiers and raw/byte string prefixes. The prefix letters
        // (`r`, `b`, `br`, `c`) only start a literal when immediately
        // followed by a quote or `#"`-hash run — otherwise they are plain
        // identifiers.
        if c == 'r' || c == 'b' || c == 'c' {
            if let Some(kind) = self.try_prefixed_literal() {
                return kind;
            }
        }

        if is_ident_start(c) {
            while self.pos < self.bytes.len() {
                let c = self.src[self.pos..].chars().next();
                match c {
                    Some(c) if is_ident_continue(c) => self.bump_char(),
                    _ => break,
                }
            }
            return TokKind::Ident;
        }

        if c.is_ascii_digit() {
            self.lex_number();
            return TokKind::Num;
        }

        if c == '"' {
            self.lex_plain_string();
            return TokKind::Str;
        }

        if c == '\'' {
            return self.lex_char_or_lifetime();
        }

        // Multi-byte operators, greedily.
        for op in MULTI_PUNCT {
            if self.src[self.pos..].starts_with(op) {
                for _ in 0..op.len() {
                    self.bump();
                }
                return TokKind::Punct;
            }
        }

        self.bump_char();
        TokKind::Punct
    }

    /// `r#ident`, `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br##"…"##`, `c"…"`.
    /// Returns `None` when the prefix is just the start of an identifier.
    fn try_prefixed_literal(&mut self) -> Option<TokKind> {
        let rest = &self.src[self.pos..];
        let (prefix_len, raw, byte_char) = if rest.starts_with("br") || rest.starts_with("cr") {
            (2, true, false)
        } else if rest.starts_with('r') {
            // Could be r"…", r#"…"#, or a raw identifier r#ident.
            (1, true, false)
        } else if rest.starts_with('b') || rest.starts_with('c') {
            (1, false, rest.starts_with('b'))
        } else {
            return None;
        };
        let after = &rest[prefix_len..];

        if raw {
            // Count hashes; need a quote right after for a raw string.
            let hashes = after.bytes().take_while(|&b| b == b'#').count();
            let after_hashes = &after[hashes..];
            if after_hashes.starts_with('"') {
                for _ in 0..prefix_len + hashes + 1 {
                    self.bump();
                }
                let close: String = format!("\"{}", "#".repeat(hashes));
                while self.pos < self.bytes.len() {
                    if self.src[self.pos..].starts_with(&close) {
                        for _ in 0..close.len() {
                            self.bump();
                        }
                        return Some(TokKind::Str);
                    }
                    self.bump_char();
                }
                return Some(TokKind::Str); // unterminated: runs to EOF
            }
            // Raw identifier r#foo (only the plain-`r` prefix form).
            if prefix_len == 1 && hashes == 1 && after_hashes.chars().next().is_some_and(is_ident_start)
            {
                for _ in 0..2 {
                    self.bump(); // r#
                }
                while self.pos < self.bytes.len() {
                    let c = self.src[self.pos..].chars().next();
                    match c {
                        Some(c) if is_ident_continue(c) => self.bump_char(),
                        _ => break,
                    }
                }
                return Some(TokKind::Ident);
            }
            return None;
        }

        // Non-raw prefixed literal: b"…", c"…", b'…'.
        if after.starts_with('"') {
            self.bump(); // prefix
            self.lex_plain_string();
            return Some(TokKind::Str);
        }
        if byte_char && after.starts_with('\'') {
            self.bump(); // prefix
            return Some(self.lex_char_or_lifetime());
        }
        None
    }

    /// A `"…"` string starting at the current quote; handles escapes and
    /// (unlike v1's line masker) multi-line strings natively.
    fn lex_plain_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    if self.pos < self.bytes.len() {
                        self.bump_char();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump_char(),
            }
        }
    }

    /// Disambiguate `'x'` / `'\n'` (char literal) from `'a` (lifetime).
    fn lex_char_or_lifetime(&mut self) -> TokKind {
        self.bump(); // apostrophe
        let rest = &self.src[self.pos..];
        let mut chars = rest.chars();
        match chars.next() {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.bump_char();
                }
                if self.pos < self.bytes.len() {
                    self.bump();
                }
                TokKind::Char
            }
            Some(c) if chars.next() == Some('\'') => {
                // One char then a quote: 'x', 'λ'.
                self.bump_char();
                let _ = c;
                self.bump();
                TokKind::Char
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                // Lifetime: consume the identifier, no closing quote.
                while self.pos < self.bytes.len() {
                    let c = self.src[self.pos..].chars().next();
                    match c {
                        Some(c) if is_ident_continue(c) => self.bump_char(),
                        _ => break,
                    }
                }
                TokKind::Lifetime
            }
            _ => TokKind::Punct, // stray apostrophe
        }
    }

    /// A numeric literal starting at a digit: integers, radix forms,
    /// floats, exponents and type suffixes. `1..2` and `1.max(2)` leave
    /// the dot alone.
    fn lex_number(&mut self) {
        // Radix prefix?
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b') if self.peek(2).is_some())
        {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
            return;
        }
        while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            self.bump();
        }
        // Fractional part: a dot NOT followed by another dot (range) or an
        // identifier start (method call / tuple field access).
        if self.peek(0) == Some(b'.') {
            let next = self.peek(1);
            let blocked = matches!(next, Some(b'.'))
                || next
                    .map(|b| is_ident_start(b as char) && !b.is_ascii_digit())
                    .unwrap_or(false);
            if !blocked {
                self.bump();
                while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, first_digit) = (self.peek(1), self.peek(2));
            let has_exp = match sign {
                Some(b'+') | Some(b'-') => first_digit.is_some_and(|b| b.is_ascii_digit()),
                Some(b) => b.is_ascii_digit(),
                None => false,
            };
            if has_exp {
                self.bump(); // e
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.bump();
                }
                while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    self.bump();
                }
            }
        }
        // Type suffix (f64, u32, usize, …).
        while self
            .peek(0)
            .is_some_and(|b| is_ident_continue(b as char) && b.is_ascii())
        {
            self.bump();
        }
    }
}

/// A lexed file: the source text plus its token stream, with helpers the
/// parser and the semantic rules share.
#[derive(Debug, Clone)]
pub struct TokenFile {
    pub src: String,
    pub toks: Vec<Tok>,
}

impl TokenFile {
    pub fn new(src: &str) -> TokenFile {
        TokenFile {
            toks: lex(src),
            src: src.to_string(),
        }
    }

    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.toks[i].text(&self.src)
    }

    /// Index of the next non-trivia token at or after `i`.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while i < self.toks.len() {
            if !self.toks[i].kind.is_trivia() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Index of the previous non-trivia token strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.toks[j].kind.is_trivia())
    }

    /// Round-trip check: token spans tile the source exactly.
    pub fn round_trips(&self) -> bool {
        let mut pos = 0usize;
        for t in &self.toks {
            if t.start != pos || t.end < t.start {
                return false;
            }
            pos = t.end;
        }
        pos == self.src.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn assert_round_trip(src: &str) {
        let f = TokenFile::new(src);
        assert!(f.round_trips(), "no round trip for {src:?}: {:?}", f.toks);
    }

    #[test]
    fn idents_numbers_ops() {
        let ks = kinds("let x2 = 1_000.5e-3f64 + 0xff;");
        assert_eq!(ks[0], (TokKind::Ident, "let"));
        assert_eq!(ks[1], (TokKind::Ident, "x2"));
        assert_eq!(ks[2], (TokKind::Punct, "="));
        assert_eq!(ks[3], (TokKind::Num, "1_000.5e-3f64"));
        assert_eq!(ks[4], (TokKind::Punct, "+"));
        assert_eq!(ks[5], (TokKind::Num, "0xff"));
        assert_round_trip("let x2 = 1_000.5e-3f64 + 0xff;");
    }

    #[test]
    fn range_and_method_dots_stay_out_of_numbers() {
        let ks = kinds("a[1..2]; 3.max(4); 5.0.floor()");
        assert!(ks.contains(&(TokKind::Num, "1")));
        assert!(ks.contains(&(TokKind::Punct, "..")));
        assert!(ks.contains(&(TokKind::Num, "3")));
        assert!(ks.contains(&(TokKind::Num, "5.0")));
        assert_round_trip("a[1..2]; 3.max(4); 5.0.floor()");
    }

    #[test]
    fn strings_and_raw_strings() {
        let ks = kinds(r##"let s = "a\"b"; let r = r#"panic!()"#; let b = b"x";"##);
        let strs: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(strs, [r#""a\"b""#, r###"r#"panic!()"#"###, "b\"x\""]);
        assert_round_trip(r##"let s = "a\"b"; let r = r#"panic!()"#; let b = b"x";"##);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = '\"'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, ["'\"'", "'\\n'"]);
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("let r#loop = 3; r");
        assert_eq!(ks[1], (TokKind::Ident, "r#loop"));
        assert_eq!(ks.last().copied(), Some((TokKind::Ident, "r")));
    }

    #[test]
    fn comments_nested_and_line() {
        let src = "x /* a /* b */ c */ y // tail\nz";
        let ks = kinds(src);
        assert_eq!(ks, [
            (TokKind::Ident, "x"),
            (TokKind::Ident, "y"),
            (TokKind::Ident, "z"),
        ]);
        assert_round_trip(src);
    }

    #[test]
    fn multibyte_ops_compose() {
        let ks = kinds("a::b != c && d ..= e -> f");
        let puncts: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(puncts, ["::", "!=", "&&", "..=", "->"]);
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nbb\n  ccc");
        let named: Vec<(usize, TokKind)> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.line, t.kind))
            .collect();
        assert_eq!(named.len(), 3);
        assert_eq!(named[0].0, 1);
        assert_eq!(named[1].0, 2);
        assert_eq!(named[2].0, 3);
    }

    #[test]
    fn unterminated_forms_reach_eof() {
        for src in ["\"never closed", "/* open", "r#\"open", "'"] {
            assert_round_trip(src);
        }
    }

    #[test]
    fn unicode_content_round_trips() {
        assert_round_trip("// §4.2 comment with µs and λ\nlet x = \"café\"; let c = 'λ';");
    }
}

//! simlint — zero-dependency static analysis for the HCAPP workspace.
//!
//! The simulator's credibility rests on properties `rustc` cannot check:
//! physical quantities staying inside their unit newtypes, library code
//! never panicking out of a sweep, bit-identical reruns, a dependency DAG
//! that keeps the workspace buildable offline, and controller code that is
//! traceable back to the paper. simlint checks all five as plain line/token
//! scans over the source tree and the `Cargo.toml` files — no `syn`, no
//! registry dependencies, no network — so it runs anywhere tier-1 runs.
//!
//! | Rule | Name | What it enforces |
//! |------|------|------------------|
//! | L1 | `unit-safety`    | no raw f64 arithmetic on voltage/power/time values outside `sim-core/src/units.rs` and the power-model internals |
//! | L2 | `no-panic`       | no `unwrap`/`panic!`/message-less `expect` in non-test library code |
//! | L3 | `determinism`    | no `Instant::now`/`SystemTime`/`thread_rng`/`HashMap` in simulation crates |
//! | L4 | `dep-layering`   | paper-shaped crate DAG, `criterion` only in `crates/bench`, zero registry deps |
//! | L5 | `doc-coverage`   | every pub item in `crates/core/src/controller/` cites a paper section/equation |
//!
//! Suppression: `// simlint: allow(L2)` (or the rule name) on the offending
//! line or the line above; `simlint: allow-file(L3)` in any comment for a
//! whole file. Allowlisting is deliberate and greppable.
//!
//! Entry points: [`check_workspace`] (library), the `simlint` binary
//! (`cargo run -p simlint -- --deny-all`), and [`assert_workspace_clean`]
//! which each crate calls from a `tests/simlint.rs` so tier-1 runs the lint
//! automatically.

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod rules;
pub mod sem;
pub mod source;

use std::fmt;
use std::path::{Path, PathBuf};

use manifest::Manifest;
use source::SourceFile;

/// The lint rules. `code()` gives the short `L*` id used in output and
/// allow directives. L1–L5 are the line-lexical rules from v1; L6–L8 are
/// the v2 semantic rules over the symbol graph; L9 audits the allow
/// directives themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    UnitSafety,
    NoPanic,
    Determinism,
    DepLayering,
    DocCoverage,
    PanicReachability,
    LockDiscipline,
    TimeDomain,
    AllowHygiene,
}

impl Rule {
    pub const ALL: [Rule; 9] = [
        Rule::UnitSafety,
        Rule::NoPanic,
        Rule::Determinism,
        Rule::DepLayering,
        Rule::DocCoverage,
        Rule::PanicReachability,
        Rule::LockDiscipline,
        Rule::TimeDomain,
        Rule::AllowHygiene,
    ];

    pub fn code(&self) -> &'static str {
        match self {
            Rule::UnitSafety => "L1",
            Rule::NoPanic => "L2",
            Rule::Determinism => "L3",
            Rule::DepLayering => "L4",
            Rule::DocCoverage => "L5",
            Rule::PanicReachability => "L6",
            Rule::LockDiscipline => "L7",
            Rule::TimeDomain => "L8",
            Rule::AllowHygiene => "L9",
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Rule::UnitSafety => "unit-safety",
            Rule::NoPanic => "no-panic",
            Rule::Determinism => "determinism",
            Rule::DepLayering => "dep-layering",
            Rule::DocCoverage => "doc-coverage",
            Rule::PanicReachability => "panic-reachability",
            Rule::LockDiscipline => "lock-discipline",
            Rule::TimeDomain => "time-domain",
            Rule::AllowHygiene => "allow-hygiene",
        }
    }

    /// Accepts either the code (`L2`) or the name (`no-panic`),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        Rule::ALL
            .into_iter()
            .find(|r| r.code().eq_ignore_ascii_case(s) || r.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line (trimmed) or manifest entry. Baselines match on
    /// `(rule, file, excerpt)` so line drift never resurrects a finding.
    pub excerpt: String,
    /// Extra context for semantic rules (e.g. the call chain from the hot
    /// loop for L6). Display/JSON only — never part of baseline identity.
    pub note: String,
}

impl Finding {
    /// The one-object-per-line JSON form emitted by `simlint --format json`
    /// and pinned by the golden fixture tests.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"name\":{},\"file\":{},\"line\":{},\"excerpt\":{},\"note\":{}}}",
            baseline::quote(self.rule.code()),
            baseline::quote(self.rule.name()),
            baseline::quote(&self.file),
            self.line,
            baseline::quote(&self.excerpt),
            baseline::quote(&self.note),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule,
            self.excerpt
        )?;
        if !self.note.is_empty() {
            write!(f, "  ({})", self.note)?;
        }
        Ok(())
    }
}

/// Walk upward from `start` to the manifest containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = if start.is_dir() {
        start.to_path_buf()
    } else {
        start.parent()?.to_path_buf()
    };
    loop {
        let candidate = dir.join("Cargo.toml");
        if candidate.is_file() {
            if let Ok(text) = std::fs::read_to_string(&candidate) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Directories never scanned.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

pub(crate) fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    walk_rs(dir, out);
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort(); // deterministic findings order regardless of OS
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk_rs(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

pub(crate) fn crate_name_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// Whole-file test/bench/example targets, and fixtures that intentionally
/// trip rules.
pub(crate) fn whole_file_is_test(rel: &str) -> bool {
    let in_dir = |d: &str| {
        rel.split('/')
            .any(|seg| seg == d)
    };
    in_dir("tests") || in_dir("benches") || in_dir("examples")
}

pub(crate) fn is_fixture(rel: &str) -> bool {
    rel.contains("tests/fixtures/")
}

/// Load every `.rs` file and every `Cargo.toml` under `root`.
pub struct LoadedWorkspace {
    pub root: PathBuf,
    pub sources: Vec<SourceFile>,
    pub manifests: Vec<Manifest>,
    /// The token-level view: lexed + parsed files, symbol table, call
    /// graph. Built from the same bytes as `sources`.
    pub graph: graph::Workspace,
}

impl LoadedWorkspace {
    pub fn load(root: &Path) -> std::io::Result<LoadedWorkspace> {
        let mut rs_files = Vec::new();
        walk_rs(root, &mut rs_files);

        let mut sources = Vec::new();
        let mut parsed = Vec::new();
        for abs in rs_files {
            let rel = source::rel_to(root, &abs);
            if is_fixture(&rel) {
                continue;
            }
            let crate_name = crate_name_of(&rel);
            let is_test = whole_file_is_test(&rel);
            let text = std::fs::read_to_string(&abs)?;
            sources.push(SourceFile::from_text(
                &text,
                rel.clone(),
                crate_name.clone(),
                is_test,
            ));
            parsed.push(graph::ParsedFile::new(rel, crate_name, &text, is_test));
        }
        let graph = graph::Workspace::build(parsed);
        // Item-level allow directives need the item extents the parser
        // just produced; graft them onto the line-based sources.
        source::attach_item_allows(&mut sources, &graph);

        let mut manifests = Vec::new();
        let mut manifest_paths = vec![root.join("Cargo.toml")];
        let crates_dir = root.join("crates");
        if let Ok(entries) = std::fs::read_dir(&crates_dir) {
            let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
            dirs.sort();
            for d in dirs {
                let m = d.join("Cargo.toml");
                if m.is_file() {
                    manifest_paths.push(m);
                }
            }
        }
        for abs in manifest_paths {
            let rel = source::rel_to(root, &abs);
            manifests.push(Manifest::load(&abs, rel)?);
        }

        Ok(LoadedWorkspace {
            root: root.to_path_buf(),
            sources,
            manifests,
            graph,
        })
    }

    /// Build an in-memory workspace from `(rel_path, text)` pairs — the
    /// entry point for fixture tests of the semantic rules, which need a
    /// symbol graph rather than a single [`SourceFile`]. No filesystem,
    /// no manifests, no baseline.
    pub fn from_texts(files: &[(&str, &str)]) -> LoadedWorkspace {
        let mut sources = Vec::new();
        let mut parsed = Vec::new();
        for (rel, text) in files {
            let crate_name = crate_name_of(rel);
            let is_test = whole_file_is_test(rel);
            sources.push(SourceFile::from_text(
                text,
                rel.to_string(),
                crate_name.clone(),
                is_test,
            ));
            parsed.push(graph::ParsedFile::new(rel.to_string(), crate_name, text, is_test));
        }
        let graph = graph::Workspace::build(parsed);
        source::attach_item_allows(&mut sources, &graph);
        LoadedWorkspace {
            root: PathBuf::new(),
            sources,
            manifests: Vec::new(),
            graph,
        }
    }

    /// The line-view of `rel`, for allow lookups from the semantic rules.
    pub fn source_by_rel(&self, rel: &str) -> Option<&SourceFile> {
        self.sources.iter().find(|s| s.rel_path == rel)
    }

    /// Run the requested rules, findings sorted by (rule, file, line).
    pub fn check(&self, rules: &[Rule]) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &self.sources {
            if rules.contains(&Rule::UnitSafety) {
                rules::l1_unit_safety(file, &mut findings);
            }
            if rules.contains(&Rule::NoPanic) {
                rules::l2_no_panic(file, &mut findings);
            }
            if rules.contains(&Rule::Determinism) {
                rules::l3_determinism(file, &mut findings);
            }
            if rules.contains(&Rule::DocCoverage) {
                rules::l5_doc_coverage(file, &mut findings);
            }
        }
        if rules.contains(&Rule::DepLayering) {
            manifest::l4_dep_layering(&self.manifests, &mut findings);
        }
        if rules.contains(&Rule::PanicReachability) {
            sem::l6_panic_reachability(self, &mut findings);
        }
        if rules.contains(&Rule::LockDiscipline) {
            sem::l7_lock_discipline(self, &mut findings);
        }
        if rules.contains(&Rule::TimeDomain) {
            sem::l8_time_domain(self, &mut findings);
        }
        if rules.contains(&Rule::AllowHygiene) {
            sem::l9_allow_hygiene(self, &mut findings);
        }
        findings.sort_by(|a, b| {
            (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line))
        });
        findings
    }

    /// Run rules and subtract the committed baseline (when one exists at
    /// `<root>/simlint.baseline.json`). Returns the findings NOT covered
    /// by the baseline.
    pub fn check_against_baseline(&self, rules: &[Rule]) -> Vec<Finding> {
        let findings = self.check(rules);
        match baseline::Baseline::load(&self.root) {
            Some(base) => base.filter_new(findings),
            None => findings,
        }
    }
}

/// Run every rule over the workspace containing `root` (no baseline).
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(LoadedWorkspace::load(root)?.check(&Rule::ALL))
}

/// Test hookup: discover the workspace root from a crate's
/// `CARGO_MANIFEST_DIR`, run every rule, subtract the committed baseline,
/// and panic with a readable report if any *new* finding remains. Each
/// workspace crate calls this from `tests/simlint.rs`, so `cargo test`
/// enforces the lint on every change.
pub fn assert_workspace_clean(manifest_dir: &str) {
    let root = find_workspace_root(Path::new(manifest_dir))
        .expect("invariant: simlint tests run from inside the cargo workspace");
    let ws = LoadedWorkspace::load(&root)
        .expect("invariant: workspace sources are readable during tests");
    let findings = ws.check_against_baseline(&Rule::ALL);
    if !findings.is_empty() {
        let mut report = format!("simlint found {} new violation(s):\n", findings.len());
        for f in &findings {
            report.push_str(&format!("  {f}\n"));
        }
        report.push_str(
            "suppress intentionally with `// simlint: allow(<rule>): <why>` on or above the \
             line/item, or re-baseline deliberately with `cargo run -p simlint -- --write-baseline`\n",
        );
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parse_accepts_code_and_name() {
        assert_eq!(Rule::parse("L2"), Some(Rule::NoPanic));
        assert_eq!(Rule::parse("l4"), Some(Rule::DepLayering));
        assert_eq!(Rule::parse("determinism"), Some(Rule::Determinism));
        assert_eq!(Rule::parse("nope"), None);
    }

    #[test]
    fn crate_name_extraction() {
        assert_eq!(crate_name_of("crates/sim-core/src/units.rs"), "sim-core");
        assert_eq!(crate_name_of("src/lib.rs"), "");
    }

    #[test]
    fn test_paths_detected() {
        assert!(whole_file_is_test("crates/core/tests/props.rs"));
        assert!(whole_file_is_test("crates/bench/benches/system.rs"));
        assert!(!whole_file_is_test("crates/core/src/pid.rs"));
        assert!(is_fixture("crates/simlint/tests/fixtures/l2_panic.rs"));
    }

    #[test]
    fn finding_display_is_stable() {
        let f = Finding {
            rule: Rule::NoPanic,
            file: "crates/core/src/pid.rs".into(),
            line: 7,
            excerpt: "x.unwrap();".into(),
            note: String::new(),
        };
        assert_eq!(
            f.to_string(),
            "crates/core/src/pid.rs:7: [L2 (no-panic)] x.unwrap();"
        );
    }
}

//! CLI for simlint: `cargo run -p simlint -- [--deny-all] [--rule L2]...
//! [--format json] [--changed] [ROOT]`.
//!
//! Exit status: 0 when no unbaselined findings (the acceptance gate for
//! the workspace), 1 when findings exist, 2 on usage or I/O errors.
//! `--deny-all` is the explicit "treat everything as an error" mode used
//! by `scripts/check.sh`; since every rule already denies by default it is
//! an alias for the default behaviour, kept as a stable flag so CI
//! invocations read clearly.
//!
//! Baseline workflow: findings are filtered against
//! `<root>/simlint.baseline.json` unless `--no-baseline` is given;
//! `--write-baseline` runs all rules and rewrites that file from the
//! current findings (a deliberate, reviewable act — the diff shows every
//! newly-accepted violation).

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::baseline::{Baseline, BASELINE_FILE};
use simlint::{find_workspace_root, Finding, LoadedWorkspace, Rule};

const USAGE: &str = "\
simlint — static analysis for the HCAPP workspace

USAGE: simlint [OPTIONS] [ROOT]

OPTIONS:
  --deny-all         fail on any unbaselined finding from any rule (default)
  --rule <R>         run only rule R (repeatable); R is L1..L9 or a rule name
  --format <F>       output format: text (default) or json (one object/line)
  --json             alias for --format json
  --changed          report only findings in files modified vs git HEAD
  --no-baseline      ignore simlint.baseline.json (report everything)
  --write-baseline   rewrite simlint.baseline.json from current findings
  --list-rules       print the rule table and exit
  -h, --help         this text

ROOT defaults to the enclosing cargo workspace of the current directory.";

/// Workspace-relative paths of files modified vs HEAD, from
/// `git diff --name-only HEAD` plus untracked files.
fn changed_files(root: &std::path::Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for args in [
        &["diff", "--name-only", "HEAD"][..],
        &["ls-files", "--others", "--exclude-standard"][..],
    ] {
        let out = std::process::Command::new("git")
            .args(args)
            .current_dir(root)
            .output()
            .map_err(|e| format!("git {}: {e}", args.join(" ")))?;
        if !out.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        files.extend(
            String::from_utf8_lossy(&out.stdout)
                .lines()
                .map(|l| l.trim().replace('\\', "/"))
                .filter(|l| !l.is_empty()),
        );
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn print_findings(findings: &[Finding], json: bool) {
    for f in findings {
        if json {
            println!("{}", f.to_json());
        } else {
            println!("{f}");
        }
    }
}

fn main() -> ExitCode {
    let mut rules: Vec<Rule> = Vec::new();
    let mut json = false;
    let mut changed_only = false;
    let mut use_baseline = true;
    let mut write_baseline = false;
    let mut root_arg: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => { /* default; accepted for explicit CI use */ }
            "--json" => json = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "error: --format needs `text` or `json`, got {:?}\n\n{USAGE}",
                        other.unwrap_or("")
                    );
                    return ExitCode::from(2);
                }
            },
            "--changed" => changed_only = true,
            "--no-baseline" => use_baseline = false,
            "--write-baseline" => write_baseline = true,
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{}  {}", r.code(), r.name());
                }
                return ExitCode::SUCCESS;
            }
            "--rule" => match args.next().as_deref().and_then(Rule::parse) {
                Some(r) => rules.push(r),
                None => {
                    eprintln!("error: --rule needs L1..L9 or a rule name\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root_arg = Some(PathBuf::from(other)),
            other => {
                eprintln!("error: unknown option {other}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: no cargo workspace found; pass ROOT explicitly");
            return ExitCode::from(2);
        }
    };

    let ws = match LoadedWorkspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let run_rules: &[Rule] = if rules.is_empty() { &Rule::ALL } else { &rules };
    let mut findings = ws.check(run_rules);

    if write_baseline {
        let base = Baseline::from_findings(&findings);
        let path = root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, base.render()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "simlint: baselined {} finding(s) in {} class(es) -> {}",
            base.total(),
            base.entries.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let mut baselined = 0usize;
    if use_baseline {
        if let Some(base) = Baseline::load(&root) {
            let before = findings.len();
            findings = base.filter_new(findings);
            baselined = before - findings.len();
        }
    }

    // `--changed` filters the *report*, not the analysis: semantic rules
    // need the whole workspace (a panic in an unchanged file can become
    // reachable through a changed one), so the full and incremental passes
    // agree by construction on any file they both report.
    if changed_only {
        match changed_files(&root) {
            Ok(files) => findings.retain(|f| files.iter().any(|c| c == &f.file)),
            Err(e) => {
                eprintln!("error: --changed needs a git checkout: {e}");
                return ExitCode::from(2);
            }
        }
    }

    print_findings(&findings, json);

    if findings.is_empty() {
        if !json {
            let scope = if changed_only { "changed files" } else { "workspace" };
            match baselined {
                0 => println!("simlint: {scope} clean (rules: all deny)"),
                n => println!("simlint: {scope} clean ({n} legacy finding(s) baselined)"),
            }
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

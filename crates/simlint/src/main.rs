//! CLI for simlint: `cargo run -p simlint -- [--deny-all] [--rule L2]...
//! [--json] [ROOT]`.
//!
//! Exit status: 0 when no findings (the acceptance gate for the workspace),
//! 1 when findings exist, 2 on usage or I/O errors. `--deny-all` is the
//! explicit "treat everything as an error" mode used by `scripts/check.sh`;
//! since every rule already denies by default it is an alias for the
//! default behaviour, kept as a stable flag so CI invocations read clearly.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{check_workspace, find_workspace_root, LoadedWorkspace, Rule};

const USAGE: &str = "\
simlint — static analysis for the HCAPP workspace

USAGE: simlint [OPTIONS] [ROOT]

OPTIONS:
  --deny-all        fail on any finding from any rule (default behaviour)
  --rule <R>        run only rule R (repeatable); R is L1..L5 or a rule name
  --json            machine-readable output (one JSON object per line)
  --list-rules      print the rule table and exit
  -h, --help        this text

ROOT defaults to the enclosing cargo workspace of the current directory.";

fn main() -> ExitCode {
    let mut rules: Vec<Rule> = Vec::new();
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => { /* default; accepted for explicit CI use */ }
            "--json" => json = true,
            "--list-rules" => {
                for r in Rule::ALL {
                    println!("{}  {}", r.code(), r.name());
                }
                return ExitCode::SUCCESS;
            }
            "--rule" => match args.next().as_deref().and_then(Rule::parse) {
                Some(r) => rules.push(r),
                None => {
                    eprintln!("error: --rule needs L1..L5 or a rule name\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root_arg = Some(PathBuf::from(other)),
            other => {
                eprintln!("error: unknown option {other}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: no cargo workspace found; pass ROOT explicitly");
            return ExitCode::from(2);
        }
    };

    let findings = if rules.is_empty() {
        check_workspace(&root)
    } else {
        LoadedWorkspace::load(&root).map(|ws| ws.check(&rules))
    };
    let findings = match findings {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        for f in &findings {
            println!(
                "{{\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"excerpt\":\"{}\"}}",
                f.rule.code(),
                f.rule.name(),
                f.file,
                f.line,
                f.excerpt.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
    } else {
        for f in &findings {
            println!("{f}");
        }
    }

    if findings.is_empty() {
        if !json {
            println!("simlint: workspace clean (rules: all deny)");
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}

//! L4 — dependency layering and hermeticity, checked against the
//! `Cargo.toml` files themselves.
//!
//! Three properties are enforced:
//!
//! 1. **Hermeticity**: no crate on the default build path may name a
//!    registry dependency — every dependency must resolve through `path`
//!    (directly or via a `path`-backed `[workspace.dependencies]` entry).
//!    The offline container has no registry, so a single versioned dep
//!    breaks `cargo build` for the whole workspace.
//! 2. **`criterion` only in `crates/bench`**: the bench crate is excluded
//!    from the workspace precisely so its registry dep cannot leak into the
//!    default resolve; nobody else gets one.
//! 3. **Layering**: the crate DAG follows the paper's structure — level 0
//!    `sim-core`; level 1 models (`power-model`, `pdn`, `workloads`);
//!    level 2 components (`cpu-sim`, `gpu-sim`, `accel-sim`, `metrics`);
//!    level 3 observability and adversaries (`telemetry`, which the
//!    controller feeds, `faults`, whose plans the controller defends
//!    against, `cache`, which memoizes the controller's runs, and —
//!    half a step above, since it consumes `telemetry`'s event stream —
//!    `analyze`, the trace analytics engine); level 4 the HCAPP
//!    controller (`core`); level 5 hosts (`cli`, `experiments`); level 6
//!    `bench` and the root harness. A crate may only depend on *strictly
//!    lower* levels (dev-dependencies exempt, so test utilities like
//!    `simlint` itself can go anywhere). Ranks are spaced by 10 so
//!    intra-level sublayers (analyze at 35) fit without renumbering.
//!
//! The parser below handles the TOML subset Cargo manifests actually use
//! (sections, `k = v`, inline tables, dotted `name.workspace = true`) —
//! deliberately, so simlint keeps its zero-dependency guarantee.

use std::path::Path;

use crate::{Finding, Rule};

/// How a dependency entry resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// `{ path = "..." }` — always resolvable offline.
    Path,
    /// `.workspace = true` — resolution depends on the root
    /// `[workspace.dependencies]` entry.
    Workspace,
    /// A bare version string or `{ version = "..." }` — needs a registry.
    Registry,
}

/// Which dependency table the entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepSection {
    Normal,
    Dev,
    Build,
}

/// One parsed dependency entry.
#[derive(Debug, Clone)]
pub struct Dep {
    pub name: String,
    pub kind: DepKind,
    pub section: DepSection,
    /// 1-based line in the manifest.
    pub line: usize,
    /// The raw entry text, for finding excerpts.
    pub raw: String,
}

/// One parsed manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// `package.name`, empty for a virtual manifest.
    pub package_name: String,
    pub deps: Vec<Dep>,
    /// Entries of `[workspace.dependencies]` (root manifest only).
    pub workspace_deps: Vec<Dep>,
}

/// Paper-structured layering. Returns `None` for crates outside the
/// hierarchy (the lint tool itself, the proptest shim).
pub fn level_of(package: &str) -> Option<u8> {
    Some(match package {
        "hcapp-sim-core" => 0,
        "hcapp-power-model" | "hcapp-pdn" | "hcapp-workloads" => 10,
        "hcapp-cpu-sim" | "hcapp-gpu-sim" | "hcapp-accel-sim" | "hcapp-metrics" => 20,
        "hcapp-telemetry" | "hcapp-faults" | "hcapp-cache" => 30,
        // Observability sublayer: the analytics engine reads telemetry's
        // event stream, so it sits strictly above telemetry but below the
        // controller, which attaches it to the run path.
        "hcapp-analyze" => 35,
        // Persistence sublayer: the checkpoint codec serializes component
        // state (sim-core's codec + cache's hashing) for the controller's
        // resume driver, so it sits beside analyze — above the leaf crates,
        // below the controller.
        "hcapp-resume" => 35,
        "hcapp" => 40,
        // Correctness tooling: the fuzzer drives the controller's executors
        // against each other, so it consumes `hcapp` (and the observability
        // stack) but is itself hosted by cli/experiments.
        "hcapp-fuzz" => 45,
        "hcapp-cli" | "hcapp-experiments" => 50,
        "hcapp-bench" | "hcapp-repro" => 60,
        _ => return None,
    })
}

fn strip_toml_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn classify_value(value: &str) -> DepKind {
    let v = value.trim();
    if v.starts_with('{') {
        if v.contains("path =") || v.contains("path=") {
            DepKind::Path
        } else if v.contains("workspace") {
            DepKind::Workspace
        } else {
            DepKind::Registry
        }
    } else if v.starts_with('"') {
        DepKind::Registry
    } else {
        // `true`/other scalar from a dotted key; the caller decides.
        DepKind::Registry
    }
}

impl Manifest {
    pub fn parse(text: &str, rel_path: String) -> Manifest {
        let mut package_name = String::new();
        let mut deps: Vec<Dep> = Vec::new();
        let mut workspace_deps: Vec<Dep> = Vec::new();

        #[derive(Clone, PartialEq)]
        enum Sect {
            Package,
            Deps(DepSection),
            WorkspaceDeps,
            /// `[dependencies.foo]` long-form table.
            DepTable(DepSection, String, usize),
            Other,
        }
        let mut sect = Sect::Other;
        // Accumulator for long-form dep tables.
        let mut table_kind: Option<DepKind> = None;

        let flush_table = |sect: &Sect, kind: &mut Option<DepKind>,
                           deps: &mut Vec<Dep>| {
            if let Sect::DepTable(section, name, line) = sect {
                deps.push(Dep {
                    name: name.clone(),
                    kind: kind.take().unwrap_or(DepKind::Registry),
                    section: *section,
                    line: *line,
                    raw: format!("[{name}] table"),
                });
            }
        };

        for (idx, raw_line) in text.lines().enumerate() {
            let line = strip_toml_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                flush_table(&sect, &mut table_kind, &mut deps);
                let name = &line[1..line.len() - 1];
                // Normalize `target.'cfg(..)'.dependencies` to its tail.
                let tail = name.rsplit('.').next().unwrap_or(name);
                sect = match (name, tail) {
                    ("package", _) => Sect::Package,
                    ("workspace.dependencies", _) => Sect::WorkspaceDeps,
                    (_, "dependencies") if name == "dependencies" || name.starts_with("target.") => {
                        Sect::Deps(DepSection::Normal)
                    }
                    (_, "dev-dependencies")
                        if name == "dev-dependencies" || name.starts_with("target.") =>
                    {
                        Sect::Deps(DepSection::Dev)
                    }
                    (_, "build-dependencies")
                        if name == "build-dependencies" || name.starts_with("target.") =>
                    {
                        Sect::Deps(DepSection::Build)
                    }
                    _ => {
                        // `[dependencies.foo]` / `[dev-dependencies.foo]`.
                        if let Some(dep_name) = name.strip_prefix("dependencies.") {
                            Sect::DepTable(DepSection::Normal, dep_name.to_string(), idx + 1)
                        } else if let Some(dep_name) = name.strip_prefix("dev-dependencies.") {
                            Sect::DepTable(DepSection::Dev, dep_name.to_string(), idx + 1)
                        } else if let Some(dep_name) = name.strip_prefix("build-dependencies.") {
                            Sect::DepTable(DepSection::Build, dep_name.to_string(), idx + 1)
                        } else {
                            Sect::Other
                        }
                    }
                };
                continue;
            }
            let Some(eq) = line.find('=') else { continue };
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim();
            match &sect {
                Sect::Package => {
                    if key == "name" {
                        package_name = value.trim_matches('"').to_string();
                    }
                }
                Sect::Deps(section) => {
                    let (name, kind) = if let Some(base) = key.strip_suffix(".workspace") {
                        (base.to_string(), DepKind::Workspace)
                    } else {
                        (key.to_string(), classify_value(value))
                    };
                    deps.push(Dep {
                        name,
                        kind,
                        section: *section,
                        line: idx + 1,
                        raw: line.to_string(),
                    });
                }
                Sect::WorkspaceDeps => {
                    let (name, kind) = if let Some(base) = key.strip_suffix(".workspace") {
                        (base.to_string(), DepKind::Workspace)
                    } else {
                        (key.to_string(), classify_value(value))
                    };
                    workspace_deps.push(Dep {
                        name,
                        kind,
                        section: DepSection::Normal,
                        line: idx + 1,
                        raw: line.to_string(),
                    });
                }
                Sect::DepTable(..) => match key {
                    "path" => table_kind = Some(DepKind::Path),
                    "workspace" => table_kind = Some(DepKind::Workspace),
                    "version" | "git" => {
                        if table_kind != Some(DepKind::Path) {
                            table_kind = Some(DepKind::Registry);
                        }
                    }
                    _ => {}
                },
                Sect::Other => {}
            }
        }
        flush_table(&sect, &mut table_kind, &mut deps);

        Manifest {
            rel_path,
            package_name,
            deps,
            workspace_deps,
        }
    }

    pub fn load(abs: &Path, rel_path: String) -> std::io::Result<Manifest> {
        Ok(Self::parse(&std::fs::read_to_string(abs)?, rel_path))
    }
}

fn finding(rule: Rule, m: &Manifest, dep: &Dep, note: &str) -> Finding {
    Finding {
        rule,
        file: m.rel_path.clone(),
        line: dep.line,
        excerpt: format!("{} [{}]", dep.raw, note),
        note: String::new(),
    }
}

/// Run all L4 checks over the collected manifests. `root_manifest` is the
/// workspace root `Cargo.toml` (also present in `manifests`).
pub fn l4_dep_layering(manifests: &[Manifest], findings: &mut Vec<Finding>) {
    let root = manifests
        .iter()
        .find(|m| m.rel_path == "Cargo.toml");
    let workspace_path_deps: Vec<&str> = root
        .map(|r| {
            r.workspace_deps
                .iter()
                .filter(|d| d.kind == DepKind::Path)
                .map(|d| d.name.as_str())
                .collect()
        })
        .unwrap_or_default();

    // Root [workspace.dependencies] must itself be path-only.
    if let Some(r) = root {
        for d in &r.workspace_deps {
            if d.kind != DepKind::Path {
                findings.push(finding(
                    Rule::DepLayering,
                    r,
                    d,
                    "registry entry in [workspace.dependencies]; hermetic builds need path deps",
                ));
            }
        }
    }

    for m in manifests {
        let is_bench = m.package_name == "hcapp-bench";
        for d in &m.deps {
            // 2. criterion containment.
            if d.name == "criterion" && !is_bench {
                findings.push(finding(
                    Rule::DepLayering,
                    m,
                    d,
                    "criterion is only permitted in crates/bench",
                ));
                continue;
            }
            // 1. Hermeticity.
            let resolves_offline = match d.kind {
                DepKind::Path => true,
                DepKind::Workspace => workspace_path_deps.contains(&d.name.as_str()),
                DepKind::Registry => false,
            };
            if !resolves_offline && !(is_bench && d.name == "criterion") {
                findings.push(finding(
                    Rule::DepLayering,
                    m,
                    d,
                    "registry dependency; workspace must build offline",
                ));
            }
            // 3. Layering (normal/build deps between hcapp crates only).
            if d.section != DepSection::Dev {
                if let (Some(me), Some(dep_level)) =
                    (level_of(&m.package_name), level_of(&d.name))
                {
                    if dep_level >= me {
                        findings.push(finding(
                            Rule::DepLayering,
                            m,
                            d,
                            "dependency violates the layer hierarchy (must point strictly downward)",
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Manifest {
        Manifest::parse(
            "[workspace]\nmembers = [\"crates/a\"]\n\n[workspace.dependencies]\nhcapp-sim-core = { path = \"crates/sim-core\" }\n",
            "Cargo.toml".into(),
        )
    }

    #[test]
    fn parses_package_and_dep_kinds() {
        let m = Manifest::parse(
            "[package]\nname = \"hcapp-cpu-sim\"\n\n[dependencies]\nhcapp-sim-core.workspace = true\nserde = \"1\"\nlocal = { path = \"../local\" }\n\n[dev-dependencies]\nproptest = { workspace = true }\n",
            "crates/cpu-sim/Cargo.toml".into(),
        );
        assert_eq!(m.package_name, "hcapp-cpu-sim");
        assert_eq!(m.deps.len(), 4);
        assert_eq!(m.deps[0].kind, DepKind::Workspace);
        assert_eq!(m.deps[1].kind, DepKind::Registry);
        assert_eq!(m.deps[2].kind, DepKind::Path);
        assert_eq!(m.deps[3].kind, DepKind::Workspace);
        assert_eq!(m.deps[3].section, DepSection::Dev);
    }

    #[test]
    fn flags_registry_dep() {
        let m = Manifest::parse(
            "[package]\nname = \"hcapp-pdn\"\n[dependencies]\nserde = \"1\"\n",
            "crates/pdn/Cargo.toml".into(),
        );
        let mut out = Vec::new();
        l4_dep_layering(&[root(), m], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].excerpt.contains("registry"));
    }

    #[test]
    fn flags_criterion_outside_bench() {
        let m = Manifest::parse(
            "[package]\nname = \"hcapp-metrics\"\n[dev-dependencies]\ncriterion = \"0.5\"\n",
            "crates/metrics/Cargo.toml".into(),
        );
        let mut out = Vec::new();
        l4_dep_layering(&[root(), m], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].excerpt.contains("criterion"));
    }

    #[test]
    fn bench_may_use_criterion() {
        let m = Manifest::parse(
            "[package]\nname = \"hcapp-bench\"\n[dev-dependencies]\ncriterion = \"0.5\"\n",
            "crates/bench/Cargo.toml".into(),
        );
        let mut out = Vec::new();
        l4_dep_layering(&[root(), m], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn flags_upward_layer_dep() {
        let m = Manifest::parse(
            "[package]\nname = \"hcapp-sim-core\"\n[dependencies]\nhcapp = { path = \"../core\" }\n",
            "crates/sim-core/Cargo.toml".into(),
        );
        let mut out = Vec::new();
        l4_dep_layering(&[root(), m], &mut out);
        assert!(out.iter().any(|f| f.excerpt.contains("hierarchy")), "{out:?}");
    }

    #[test]
    fn dev_deps_exempt_from_layering() {
        let m = Manifest::parse(
            "[package]\nname = \"hcapp-sim-core\"\n[dev-dependencies]\nhcapp = { path = \"../core\" }\n",
            "crates/sim-core/Cargo.toml".into(),
        );
        let mut out = Vec::new();
        l4_dep_layering(&[root(), m], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn analyze_sits_between_telemetry_and_core() {
        // The analytics engine reads telemetry's events and is attached by
        // the controller: telemetry < analyze < core, strictly.
        assert!(level_of("hcapp-telemetry") < level_of("hcapp-analyze"));
        assert!(level_of("hcapp-metrics") < level_of("hcapp-analyze"));
        assert!(level_of("hcapp-analyze") < level_of("hcapp"));
    }

    #[test]
    fn long_form_dep_table_parsed() {
        let m = Manifest::parse(
            "[package]\nname = \"hcapp-pdn\"\n[dependencies.hcapp-sim-core]\npath = \"../sim-core\"\n",
            "crates/pdn/Cargo.toml".into(),
        );
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].kind, DepKind::Path);
    }
}

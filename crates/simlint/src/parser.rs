//! A lightweight item parser over the token stream.
//!
//! Extracts the item skeleton the semantic rules need — `fn`, `struct`,
//! `enum`, `trait`, `impl`, `mod`, `use`, `const`, `static` — with enough
//! structure to answer three questions a line scanner cannot:
//!
//! 1. *Which function does this token belong to?* (fn items carry their
//!    body token range, so L6/L7/L8 attribute findings to symbols);
//! 2. *Is this code test code?* (`#[cfg(test)]` and `#[test]` are read
//!    structurally off the attribute tokens and inherited through the
//!    scope stack — no filename heuristics);
//! 3. *What is this symbol called?* (methods get their `impl` type as a
//!    qualifier, so `WorkerPool::run_all` and `RunCache::lookup` are
//!    distinct call-graph nodes even though both are named `run_all` /
//!    `lookup` locally).
//!
//! This is intentionally **not** a Rust parser: expression grammar,
//! patterns, generics and macros are skipped over by delimiter matching.
//! Items nested inside function bodies are not extracted (rare in this
//! codebase, documented as a false-negative source in DESIGN.md §6f).

use crate::lexer::{Tok, TokKind, TokenFile};

/// What kind of item a parsed entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Trait,
    Impl,
    Mod,
    Use,
    Const,
    Static,
    TypeAlias,
}

/// One extracted item.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// The item's own name (`run_all`, `WorkerPool`); for `impl` blocks the
    /// implemented type's last path segment; for `use` the full path text.
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: usize,
    /// 1-based last line (closing brace or semicolon). Filled when the
    /// item's extent is known; header-only parses fall back to `line`.
    pub end_line: usize,
    /// Token-index range `[start, end)` of the tokens *inside* the item's
    /// braces — the body for fns, the block for impls/mods. `None` for
    /// semicolon-terminated items and unclosed bodies at EOF.
    pub body: Option<(usize, usize)>,
    /// Token index of the first token of the item (attributes excluded).
    pub first_tok: usize,
    /// Whether the item is test code: `#[test]` / `#[cfg(test)]` on the
    /// item itself or any enclosing scope, or the whole file is a test
    /// target.
    pub is_test: bool,
    pub is_pub: bool,
    /// Name of the enclosing `impl` type, for methods.
    pub parent_impl: Option<String>,
    /// Names of enclosing `mod` blocks, outermost first.
    pub mods: Vec<String>,
}

impl Item {
    /// `Type::name` for methods, plain `name` otherwise.
    pub fn qualified(&self) -> String {
        match &self.parent_impl {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Scope kinds on the brace stack.
#[derive(Debug, Clone, PartialEq)]
enum ScopeKind {
    /// A `mod name { … }` block.
    Mod(String),
    /// An `impl Type { … }` block.
    Impl(String),
    /// A `trait Name { … }` block (its fns are parsed).
    Trait,
    /// A fn body: tracked so the matching `}` closes the right item; no
    /// items are extracted inside.
    FnBody(usize),
    /// Struct/enum bodies, expression blocks, match arms, … — anything
    /// that is not an item position.
    Opaque(usize),
}

#[derive(Debug, Clone)]
struct Scope {
    kind: ScopeKind,
    is_test: bool,
}

/// Keywords that introduce items this parser extracts.
fn item_keyword(text: &str) -> Option<ItemKind> {
    Some(match text {
        "fn" => ItemKind::Fn,
        "struct" => ItemKind::Struct,
        "enum" => ItemKind::Enum,
        "trait" => ItemKind::Trait,
        "impl" => ItemKind::Impl,
        "mod" => ItemKind::Mod,
        "use" => ItemKind::Use,
        "const" => ItemKind::Const,
        "static" => ItemKind::Static,
        "type" => ItemKind::TypeAlias,
        _ => return None,
    })
}

/// Parse the items of a lexed file. `whole_file_is_test` marks every item
/// as test code (integration tests / benches / examples — cargo's own
/// layout, not a heuristic).
pub fn parse_items(file: &TokenFile, whole_file_is_test: bool) -> Vec<Item> {
    Parser {
        file,
        items: Vec::new(),
        scopes: Vec::new(),
        pending_scope: None,
        pending_attr_test: false,
        pending_attr_cfg_test: false,
        pending_pub: false,
        whole_file_is_test,
    }
    .run()
}

struct Parser<'a> {
    file: &'a TokenFile,
    items: Vec<Item>,
    scopes: Vec<Scope>,
    /// Set when an item header has been parsed and its `{` is expected
    /// next: the scope that brace should open.
    pending_scope: Option<Scope>,
    pending_attr_test: bool,
    pending_attr_cfg_test: bool,
    pending_pub: bool,
    whole_file_is_test: bool,
}

impl Parser<'_> {
    fn toks(&self) -> &[Tok] {
        &self.file.toks
    }

    fn text(&self, i: usize) -> &str {
        self.file.text(i)
    }

    fn in_test_scope(&self) -> bool {
        self.whole_file_is_test || self.scopes.last().is_some_and(|s| s.is_test)
    }

    /// Whether the innermost scope admits items.
    fn at_item_position(&self) -> bool {
        match self.scopes.last().map(|s| &s.kind) {
            None => true,
            Some(ScopeKind::Mod(_)) | Some(ScopeKind::Impl(_)) | Some(ScopeKind::Trait) => true,
            _ => false,
        }
    }

    fn enclosing_impl(&self) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(name) => Some(name.clone()),
            _ => None,
        })
    }

    fn enclosing_mods(&self) -> Vec<String> {
        self.scopes
            .iter()
            .filter_map(|s| match &s.kind {
                ScopeKind::Mod(name) => Some(name.clone()),
                _ => None,
            })
            .collect()
    }

    fn run(mut self) -> Vec<Item> {
        let mut i = 0usize;
        while let Some(j) = self.file.next_code(i) {
            i = self.step(j);
        }
        self.items
    }

    /// Process the non-trivia token at `j`; return the index to continue
    /// *from* (the caller advances with `next_code`).
    fn step(&mut self, j: usize) -> usize {
        let tok = self.toks()[j];
        let text = self.text(j);

        match (tok.kind, text) {
            (TokKind::Punct, "{") => {
                let scope = self.pending_scope.take().unwrap_or(Scope {
                    kind: ScopeKind::Opaque(usize::MAX),
                    is_test: self.in_test_scope(),
                });
                self.scopes.push(scope);
                // An opaque `{` mid-expression invalidates a pending pub /
                // attribute (should not happen at item positions).
                self.pending_pub = false;
                return j + 1;
            }
            (TokKind::Punct, "}") => {
                if let Some(scope) = self.scopes.pop() {
                    match scope.kind {
                        ScopeKind::FnBody(item_idx) | ScopeKind::Opaque(item_idx)
                            if item_idx != usize::MAX =>
                        {
                            let (body_start, _) = self.items[item_idx]
                                .body
                                .unwrap_or((j, j));
                            self.items[item_idx].body = Some((body_start, j));
                            self.items[item_idx].end_line = tok.line;
                        }
                        _ => {}
                    }
                }
                return j + 1;
            }
            (TokKind::Punct, "#") if self.at_item_position() => {
                // Attribute: `#[ … ]` or `#![ … ]`; record cfg(test)/test.
                return self.consume_attribute(j);
            }
            (TokKind::Ident, "pub") if self.at_item_position() => {
                self.pending_pub = true;
                // Skip a `pub(crate)` / `pub(super)` restriction group.
                if let Some(k) = self.file.next_code(j + 1) {
                    if self.text(k) == "(" {
                        return self.skip_group(k, "(", ")");
                    }
                }
                return j + 1;
            }
            (TokKind::Ident, "unsafe" | "async" | "extern" | "default")
                if self.at_item_position() =>
            {
                return j + 1;
            }
            (TokKind::Ident, kw) if self.at_item_position() => {
                // `const` doubles as a fn modifier (`const fn`) and an item
                // keyword; peek to disambiguate.
                if kw == "const" {
                    if let Some(k) = self.file.next_code(j + 1) {
                        if self.text(k) == "fn" {
                            return j + 1; // modifier; the `fn` comes next
                        }
                    }
                }
                if let Some(kind) = item_keyword(kw) {
                    return self.parse_item(j, kind);
                }
                // Unknown ident at item position (macro invocation, etc.):
                // drop any pending modifiers and move on.
                self.pending_pub = false;
                self.pending_attr_test = false;
                self.pending_attr_cfg_test = false;
                return j + 1;
            }
            _ => j + 1,
        }
    }

    /// Consume `#[ … ]`, noting `test` / `cfg(test)` markers.
    fn consume_attribute(&mut self, hash: usize) -> usize {
        let Some(open) = self.file.next_code(hash + 1) else {
            return hash + 1;
        };
        // Inner attribute `#![ … ]` has a `!` first.
        let open = if self.text(open) == "!" {
            match self.file.next_code(open + 1) {
                Some(o) => o,
                None => return open + 1,
            }
        } else {
            open
        };
        if self.text(open) != "[" {
            return open;
        }
        // Scan the balanced bracket group, collecting ident texts.
        let mut depth = 0usize;
        let mut k = open;
        let mut idents: Vec<String> = Vec::new();
        while k < self.toks().len() {
            let t = self.text(k);
            match t {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if self.toks()[k].kind == TokKind::Ident {
                        idents.push(t.to_string());
                    }
                }
            }
            k += 1;
        }
        // `#[test]`, `#[tokio::test]`-style: a bare `test` ident marks a
        // test fn. `#[cfg(test)]` / `#[cfg(all(test, …))]`: `cfg` + `test`.
        let has_cfg = idents.iter().any(|s| s == "cfg");
        let has_test = idents.iter().any(|s| s == "test");
        if has_cfg && has_test {
            self.pending_attr_cfg_test = true;
        } else if has_test {
            self.pending_attr_test = true;
        }
        k + 1
    }

    /// Skip a balanced delimiter group starting at `open` (whose text is
    /// `open_t`); returns the index past the closing delimiter.
    fn skip_group(&self, open: usize, open_t: &str, close_t: &str) -> usize {
        let mut depth = 0usize;
        let mut k = open;
        while k < self.toks().len() {
            let t = self.text(k);
            if t == open_t {
                depth += 1;
            } else if t == close_t {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        k
    }

    /// Parse one item whose keyword sits at `kw_idx`.
    fn parse_item(&mut self, kw_idx: usize, kind: ItemKind) -> usize {
        let is_pub = std::mem::take(&mut self.pending_pub);
        let attr_test = std::mem::take(&mut self.pending_attr_test);
        let attr_cfg_test = std::mem::take(&mut self.pending_attr_cfg_test);
        let is_test = self.in_test_scope() || attr_test || attr_cfg_test;
        let line = self.toks()[kw_idx].line;

        // Item name: the next ident for named items; impls resolve their
        // target type below; `use` captures the whole path.
        let name = match kind {
            ItemKind::Impl => String::new(), // resolved by scan_impl_header
            ItemKind::Use => self.use_path_text(kw_idx),
            _ => self
                .file
                .next_code(kw_idx + 1)
                .filter(|&k| self.toks()[k].kind == TokKind::Ident)
                .map(|k| self.text(k).to_string())
                .unwrap_or_default(),
        };

        let item_idx = self.items.len();
        self.items.push(Item {
            kind,
            name,
            line,
            end_line: line,
            body: None,
            first_tok: kw_idx,
            is_test,
            is_pub,
            parent_impl: self.enclosing_impl(),
            mods: self.enclosing_mods(),
        });

        match kind {
            ItemKind::Impl => {
                let (name, brace) = self.scan_impl_header(kw_idx);
                self.items[item_idx].name = name.clone();
                match brace {
                    Some(b) => {
                        self.items[item_idx].body = Some((b + 1, b + 1));
                        self.pending_scope = Some(Scope {
                            kind: ScopeKind::Impl(name),
                            is_test: is_test || attr_cfg_test,
                        });
                        // The `{` itself is processed by step(); but we must
                        // bind it to this item for extent tracking. Opaque
                        // carries the idx; Impl does not — wrap: push via
                        // pending and fix extent on close by an Opaque proxy
                        // is not possible, so record extent via body range
                        // on the impl's own close below.
                        b
                    }
                    None => kw_idx + 1,
                }
            }
            ItemKind::Mod => {
                // `mod name;` or `mod name { … }`.
                match self.header_end(kw_idx) {
                    HeaderEnd::Brace(b) => {
                        let name = self.items[item_idx].name.clone();
                        self.items[item_idx].body = Some((b + 1, b + 1));
                        self.pending_scope = Some(Scope {
                            kind: ScopeKind::Mod(name),
                            is_test: is_test || attr_cfg_test,
                        });
                        b
                    }
                    HeaderEnd::Semi(s) => {
                        self.items[item_idx].end_line = self.toks()[s].line;
                        s + 1
                    }
                    HeaderEnd::Eof(e) => e,
                }
            }
            ItemKind::Fn => match self.header_end(kw_idx) {
                HeaderEnd::Brace(b) => {
                    self.items[item_idx].body = Some((b + 1, b + 1));
                    self.pending_scope = Some(Scope {
                        kind: ScopeKind::FnBody(item_idx),
                        is_test,
                    });
                    b
                }
                HeaderEnd::Semi(s) => {
                    self.items[item_idx].end_line = self.toks()[s].line;
                    s + 1
                }
                HeaderEnd::Eof(e) => e,
            },
            ItemKind::Trait => match self.header_end(kw_idx) {
                HeaderEnd::Brace(b) => {
                    self.pending_scope = Some(Scope {
                        kind: ScopeKind::Trait,
                        is_test,
                    });
                    b
                }
                HeaderEnd::Semi(s) => s + 1,
                HeaderEnd::Eof(e) => e,
            },
            // Struct/enum bodies, and every semicolon-terminated item:
            // opaque extent, tracked for end_line only.
            _ => match self.header_end(kw_idx) {
                HeaderEnd::Brace(b) => {
                    self.pending_scope = Some(Scope {
                        kind: ScopeKind::Opaque(item_idx),
                        is_test,
                    });
                    self.items[item_idx].body = Some((b + 1, b + 1));
                    b
                }
                HeaderEnd::Semi(s) => {
                    self.items[item_idx].end_line = self.toks()[s].line;
                    s + 1
                }
                HeaderEnd::Eof(e) => e,
            },
        }
    }

    /// The `use …;` path as text (joined without trivia).
    fn use_path_text(&self, kw_idx: usize) -> String {
        let mut out = String::new();
        let mut k = kw_idx + 1;
        while let Some(j) = self.file.next_code(k) {
            let t = self.text(j);
            if t == ";" {
                break;
            }
            out.push_str(t);
            k = j + 1;
        }
        out
    }

    /// Walk an item header to its terminating `{` or `;`, balancing
    /// parens, brackets and angle brackets. Multi-char operators that
    /// *contain* angle brackets (`->`, `=>`, `<<`…) are handled by
    /// counting their characters, except the arrows which are ignored.
    fn header_end(&self, kw_idx: usize) -> HeaderEnd {
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut angle = 0i64;
        let mut k = kw_idx + 1;
        while let Some(j) = self.file.next_code(k) {
            let t = self.text(j);
            match t {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "->" | "=>" => {}
                "{" if paren == 0 && bracket == 0 && angle <= 0 => return HeaderEnd::Brace(j),
                ";" if paren == 0 && bracket == 0 && angle <= 0 => return HeaderEnd::Semi(j),
                _ if self.toks()[j].kind == TokKind::Punct => {
                    angle += t.matches('<').count() as i64;
                    angle -= t.matches('>').count() as i64;
                }
                _ => {}
            }
            k = j + 1;
        }
        HeaderEnd::Eof(self.toks().len())
    }

    /// Resolve an `impl` header: the implemented type's name (last path
    /// segment before generic args; the type after `for` when present) and
    /// the opening brace index.
    fn scan_impl_header(&self, kw_idx: usize) -> (String, Option<usize>) {
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut angle = 0i64;
        let mut paren = 0i64;
        let mut k = kw_idx + 1;
        while let Some(j) = self.file.next_code(k) {
            let t = self.text(j);
            match t {
                "{" if angle <= 0 && paren == 0 => {
                    let name = if saw_for {
                        after_for.or(last_ident)
                    } else {
                        last_ident
                    };
                    return (name.unwrap_or_default(), Some(j));
                }
                ";" if angle <= 0 && paren == 0 => break,
                "for" if angle <= 0 => saw_for = true,
                "(" => paren += 1,
                ")" => paren -= 1,
                "->" | "=>" => {}
                _ if self.toks()[j].kind == TokKind::Punct => {
                    angle += t.matches('<').count() as i64;
                    angle -= t.matches('>').count() as i64;
                }
                _ if self.toks()[j].kind == TokKind::Ident && t != "where" => {
                    // Only record type names at the top level of the header
                    // (not generic arguments).
                    if angle <= 0 {
                        if saw_for {
                            after_for = Some(t.to_string());
                        } else {
                            last_ident = Some(t.to_string());
                        }
                    }
                }
                _ => {}
            }
            k = j + 1;
        }
        (
            if saw_for {
                after_for.or(last_ident).unwrap_or_default()
            } else {
                last_ident.unwrap_or_default()
            },
            None,
        )
    }
}

enum HeaderEnd {
    Brace(usize),
    Semi(usize),
    Eof(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> (TokenFile, Vec<Item>) {
        let f = TokenFile::new(src);
        let items = parse_items(&f, false);
        (f, items)
    }

    fn find<'a>(items: &'a [Item], name: &str) -> &'a Item {
        items
            .iter()
            .find(|i| i.name == name)
            .unwrap_or_else(|| panic!("no item {name}: {items:#?}"))
    }

    #[test]
    fn fns_structs_and_bodies() {
        let src = "pub fn alpha(x: u32) -> u32 { x + 1 }\nstruct Beta { v: f64 }\nfn gamma();";
        let (f, items) = parse(&items_src(src));
        let alpha = find(&items, "alpha");
        assert_eq!(alpha.kind, ItemKind::Fn);
        assert!(alpha.is_pub);
        let (b0, b1) = alpha.body.expect("alpha has a body");
        let body_text: String = (b0..b1).map(|i| f.text(i)).collect();
        assert!(body_text.contains("x + 1"), "{body_text}");
        assert_eq!(find(&items, "Beta").kind, ItemKind::Struct);
        assert_eq!(find(&items, "gamma").body, None);
    }

    fn items_src(s: &str) -> String {
        s.to_string()
    }

    #[test]
    fn impl_methods_get_parent_type() {
        let src = "
struct Pool;
impl Pool {
    pub fn run(&self) { self.go() }
    fn go(&self) {}
}
impl Drop for Pool { fn drop(&mut self) {} }
";
        let (_, items) = parse(src);
        let run = find(&items, "run");
        assert_eq!(run.parent_impl.as_deref(), Some("Pool"));
        assert_eq!(run.qualified(), "Pool::run");
        let drop_fn = find(&items, "drop");
        assert_eq!(drop_fn.parent_impl.as_deref(), Some("Pool"));
    }

    #[test]
    fn impl_generics_resolved() {
        let src = "impl<'s> Executor<'s> { fn tick(&self) {} }\nimpl From<u32> for Widget { fn from(v: u32) -> Self { Widget } }";
        let (_, items) = parse(src);
        assert_eq!(find(&items, "tick").parent_impl.as_deref(), Some("Executor"));
        assert_eq!(find(&items, "from").parent_impl.as_deref(), Some("Widget"));
    }

    #[test]
    fn cfg_test_mod_marks_items_test() {
        let src = "
fn live() {}
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn checks() { live(); }
    fn helper() {}
}
fn live2() {}
";
        let (_, items) = parse(src);
        assert!(!find(&items, "live").is_test);
        assert!(find(&items, "checks").is_test);
        assert!(find(&items, "helper").is_test, "inherited from cfg(test) mod");
        assert!(!find(&items, "live2").is_test, "scope must close");
    }

    #[test]
    fn test_attr_marks_fn_only() {
        let src = "#[test]\nfn t() {}\nfn live() {}";
        let (_, items) = parse(src);
        assert!(find(&items, "t").is_test);
        assert!(!find(&items, "live").is_test);
    }

    #[test]
    fn nested_mods_tracked() {
        let src = "mod outer { mod inner { fn deep() {} } }";
        let (_, items) = parse(src);
        assert_eq!(find(&items, "deep").mods, ["outer", "inner"]);
    }

    #[test]
    fn trait_decls_and_default_bodies() {
        let src = "trait Exec { fn kinds(&self) -> u32; fn run(&self) { self.kinds(); } }";
        let (_, items) = parse(src);
        assert_eq!(find(&items, "kinds").body, None);
        assert!(find(&items, "run").body.is_some());
    }

    #[test]
    fn generics_with_shift_close() {
        // `Vec<Vec<T>>` ends with a `>>` token; the angle counter must
        // treat it as two closes so the body brace is found.
        let src = "fn nested(v: Vec<Vec<u32>>) -> Vec<Vec<u32>> { v }";
        let (_, items) = parse(src);
        assert!(find(&items, "nested").body.is_some());
    }

    #[test]
    fn use_and_const_items() {
        let src = "use std::sync::mpsc::channel;\npub const MAX: usize = 4;\nstatic NAME: &str = \"x\";\ntype Alias = u32;";
        let (_, items) = parse(src);
        assert_eq!(find(&items, "std::sync::mpsc::channel").kind, ItemKind::Use);
        assert_eq!(find(&items, "MAX").kind, ItemKind::Const);
        assert_eq!(find(&items, "NAME").kind, ItemKind::Static);
        assert_eq!(find(&items, "Alias").kind, ItemKind::TypeAlias);
    }

    #[test]
    fn const_fn_is_a_fn() {
        let src = "pub const fn zero() -> u32 { 0 }";
        let (_, items) = parse(src);
        assert_eq!(find(&items, "zero").kind, ItemKind::Fn);
        assert!(find(&items, "zero").is_pub);
    }

    #[test]
    fn end_lines_cover_extent() {
        let src = "fn long() {\n    let x = 1;\n    x;\n}\n";
        let (_, items) = parse(src);
        let long = find(&items, "long");
        assert_eq!(long.line, 1);
        assert_eq!(long.end_line, 4);
    }

    #[test]
    fn whole_file_test_flag() {
        let f = TokenFile::new("fn anything() { panic!(); }");
        let items = parse_items(&f, true);
        assert!(items[0].is_test);
    }

    #[test]
    fn where_clause_headers() {
        let src = "fn bounded<T>(v: T) -> T where T: Clone + Into<String> { v }";
        let (_, items) = parse(src);
        assert!(find(&items, "bounded").body.is_some());
    }
}

//! The line-oriented rules: L1 unit-safety, L2 no-panic, L3 determinism,
//! L5 doc coverage. (L4 dependency layering lives in `manifest.rs` since it
//! reads Cargo.toml, not Rust source.)

use crate::source::SourceFile;
use crate::{Finding, Rule};

/// Crates holding simulation/library code subject to L1–L3. `cli`,
/// `experiments`, `bench`, `simlint` and the proptest shim are hosts/tools,
/// not simulation code.
pub const LIB_CRATES: &[&str] = &[
    "analyze",
    "cache",
    "core",
    "sim-core",
    "power-model",
    "pdn",
    "cpu-sim",
    "fuzz",
    "gpu-sim",
    "accel-sim",
    "faults",
    "metrics",
    "telemetry",
    "workloads",
];

/// Files where raw f64 arithmetic on physical quantities is the point:
/// the unit newtypes themselves, the time base, and the analytic power
/// model internals (Eq. 1–4 of the paper are plain algebra there).
const L1_EXEMPT_PREFIXES: &[&str] = &[
    "crates/sim-core/src/units.rs",
    "crates/sim-core/src/time.rs",
    "crates/power-model/src/",
];

/// Identifier fragments that mark a value as carrying physical units.
const L1_UNIT_IDENTS: &[&str] = &[
    "voltage", "volts", "v_dd", "vdd", "watts", "power_w", "droop_v",
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn push(findings: &mut Vec<Finding>, rule: Rule, file: &SourceFile, idx: usize) {
    if file.is_allowed(rule, idx) {
        return;
    }
    findings.push(Finding {
        rule,
        file: file.rel_path.clone(),
        line: idx + 1,
        excerpt: file.lines[idx].raw.trim().to_string(),
        note: String::new(),
    });
}

/// L1 — unit safety.
///
/// Physical quantities must travel as the `sim-core` newtypes (`Volt`,
/// `Watt`, `Hertz`, …). Mixing an unwrapped `.value()` with a bare numeric
/// literal, or comparing a unit-named identifier against a float literal,
/// silently drops the unit and is exactly the class of bug the newtypes
/// exist to stop. Fix: lift the literal (`Volt::new(0.9)`) or compare
/// newtype to newtype.
pub fn l1_unit_safety(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !LIB_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    if L1_EXEMPT_PREFIXES
        .iter()
        .any(|p| file.rel_path.starts_with(p))
    {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let m = line.masked.as_str();
        if value_call_mixed_with_literal(m) || unit_ident_vs_float_literal(m) {
            push(findings, Rule::UnitSafety, file, idx);
        }
    }
}

/// `.value()` adjacent to an arithmetic/comparison operator whose other
/// operand is a bare numeric literal: `p.value() * 1.2`, `0.9 < v.value()`.
///
/// Comparisons against a *zero* literal are exempt: a sign check
/// (`p.value() > 0.0`) is dimensionally valid in any unit, so it cannot be
/// a unit-drop bug.
fn value_call_mixed_with_literal(line: &str) -> bool {
    let bytes = line.as_bytes();
    let needle = b".value()";
    let mut start = 0usize;
    while let Some(pos) = find_from(bytes, needle, start) {
        let after = skip_spaces(bytes, pos + needle.len());
        if let Some(op_end) = binary_op_end(bytes, after) {
            let operand = skip_spaces(bytes, op_end);
            if starts_with_number(bytes, operand) {
                let comparison = compare_op_end(bytes, after).is_some();
                if !(comparison && literal_at_is_zero(bytes, operand)) {
                    return true;
                }
            }
        }
        // Literal on the left: `0.9 + v.value()` — walk back over the
        // receiver path (`self.v_max`, `cfg::cap`) to the operator.
        let mut r = pos;
        while r > 0 && {
            let b = bytes[r - 1];
            is_ident_byte(b) || b == b'.' || b == b':'
        } {
            r -= 1;
        }
        if let Some(before_op) = rskip_spaces(bytes, r) {
            if let Some(op_start) = binary_op_start(bytes, before_op) {
                if let Some(before_lit) = rskip_spaces(bytes, op_start) {
                    if ends_with_number(bytes, before_lit) {
                        let comparison =
                            matches!(bytes[op_start], b'<' | b'>' | b'=' | b'!');
                        if !(comparison && literal_ending_is_zero(bytes, before_lit)) {
                            return true;
                        }
                    }
                }
            }
        }
        start = pos + needle.len();
    }
    false
}

/// A unit-named identifier compared to a bare float literal:
/// `if voltage < 0.54`, `while watts >= 120.0`.
fn unit_ident_vs_float_literal(line: &str) -> bool {
    let lower = line.to_ascii_lowercase();
    let bytes = lower.as_bytes();
    for unit in L1_UNIT_IDENTS {
        let mut start = 0usize;
        while let Some(pos) = find_from(bytes, unit.as_bytes(), start) {
            start = pos + unit.len();
            // Must be the tail of an identifier path, not a substring of a
            // longer word (e.g. `overvoltages`→`voltage` is fine to match,
            // but `voltage_limit_docs` ending differently is handled by the
            // boundary check below).
            let end = pos + unit.len();
            if end < bytes.len() && is_ident_byte(bytes[end]) {
                continue;
            }
            let after = skip_spaces(bytes, end);
            if let Some(op_end) = compare_op_end(bytes, after) {
                let operand = skip_spaces(bytes, op_end);
                if starts_with_float(bytes, operand) && !literal_at_is_zero(bytes, operand) {
                    return true;
                }
            }
        }
    }
    false
}

/// L2 — no panics in library code.
///
/// Simulation crates are embedded by the CLI, the experiment harness and the
/// benches; an `unwrap()` that fires mid-sweep throws away the whole run.
/// Error paths must use `Result`/`Option` combinators, or — for genuine
/// invariants — `.expect("...")` with a message that states the invariant
/// (which this rule accepts). Bare `unwrap`, `panic!`, `todo!`,
/// `unimplemented!`, `unreachable!` and message-less `expect` are flagged.
pub fn l2_no_panic(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !LIB_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    const FORBIDDEN: &[&str] = &[
        ".unwrap()",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let m = line.masked.as_str();
        let hit = FORBIDDEN.iter().any(|pat| contains_token(m, pat))
            || expect_without_message(m);
        if hit {
            push(findings, Rule::NoPanic, file, idx);
        }
    }
}

/// Substring match with a left identifier boundary, so `panic!(` cannot
/// match inside a longer identifier like `explain_panic!(`-free names. The
/// boundary only applies to patterns that start with an identifier byte —
/// method patterns like `.unwrap()` legitimately follow a receiver ident.
fn contains_token(line: &str, pat: &str) -> bool {
    let bytes = line.as_bytes();
    let pat_bytes = pat.as_bytes();
    let needs_boundary = pat_bytes.first().is_some_and(|&b| is_ident_byte(b));
    let mut start = 0usize;
    while let Some(pos) = find_from(bytes, pat_bytes, start) {
        if !needs_boundary || pos == 0 || !is_ident_byte(bytes[pos - 1]) {
            return true;
        }
        start = pos + 1;
    }
    false
}

/// `.expect(` not immediately followed by a string literal. The masked text
/// preserves quote delimiters, so `.expect("msg")` shows `.expect("`.
fn expect_without_message(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = find_from(bytes, b".expect(", start) {
        let after = skip_spaces(bytes, pos + b".expect(".len());
        if after >= bytes.len() || bytes[after] != b'"' {
            return true;
        }
        start = pos + 1;
    }
    false
}

/// L3 — determinism.
///
/// The HCAPP evaluation depends on bit-identical reruns (the parallel
/// executor is checked against the serial path, and experiment CSVs are
/// diffed across machines). Wall-clock reads, OS entropy and iteration
/// order of `HashMap`/`HashSet` all break that. Use `SimTime`, the seeded
/// `sim-core` RNG, and `BTreeMap`/`Vec` instead.
pub fn l3_determinism(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !LIB_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    const FORBIDDEN: &[&str] = &[
        "Instant::now",
        "SystemTime",
        "thread_rng",
        "from_entropy",
        "HashMap",
        "HashSet",
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let m = line.masked.as_str();
        if FORBIDDEN.iter().any(|pat| contains_token(m, pat)) {
            push(findings, Rule::Determinism, file, idx);
        }
    }
}

/// L5 — doc coverage with paper citations.
///
/// Every public item in `crates/core/src/controller/` implements a specific
/// piece of the HCAPP hierarchy, so its doc comment must say *which* piece:
/// a `§`, `Eq.`, `Fig.`, `Table`, `Algorithm` or `Section` reference (or an
/// explicit mention of the paper). An undocumented controller entry point
/// is unreviewable against the source.
pub fn l5_doc_coverage(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !file.rel_path.starts_with("crates/core/src/controller/") {
        return;
    }
    const CITES: &[&str] = &[
        "§", "Eq.", "Eq ", "Fig.", "Fig ", "Table", "Section", "Sec.", "Algorithm", "paper",
        "HCAPP",
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let trimmed = line.masked.trim_start();
        let is_pub_item = ["pub fn ", "pub struct ", "pub enum ", "pub trait ", "pub const fn "]
            .iter()
            .any(|p| trimmed.starts_with(p));
        if !is_pub_item {
            continue;
        }
        // Collect the doc block above: walk up over attributes/derives to
        // contiguous `///` lines.
        let mut docs = String::new();
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let t = file.lines[j].raw.trim_start();
            if t.starts_with("#[") || t.starts_with("#!") {
                continue;
            }
            if t.starts_with("///") {
                docs.push_str(t);
                docs.push('\n');
                continue;
            }
            break;
        }
        let cited = CITES.iter().any(|c| docs.contains(c));
        if docs.is_empty() || !cited {
            push(findings, Rule::DocCoverage, file, idx);
        }
    }
}

// ---- tiny scanning helpers (no regex: L4 forbids the dependency) ----

fn find_from(haystack: &[u8], needle: &[u8], start: usize) -> Option<usize> {
    if start >= haystack.len() || needle.is_empty() {
        return None;
    }
    haystack[start..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + start)
}

fn skip_spaces(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    i
}

/// Index of the last non-space byte strictly before `end`, or None.
fn rskip_spaces(bytes: &[u8], end: usize) -> Option<usize> {
    let mut i = end;
    while i > 0 {
        i -= 1;
        if bytes[i] != b' ' {
            return Some(i);
        }
    }
    None
}

/// If a binary arithmetic/comparison operator starts at `i`, return the
/// index just past it.
fn binary_op_end(bytes: &[u8], i: usize) -> Option<usize> {
    if i >= bytes.len() {
        return None;
    }
    match bytes[i] {
        b'+' | b'-' | b'*' | b'/' | b'%' => Some(i + 1),
        b'<' | b'>' => {
            if bytes.get(i + 1) == Some(&b'=') {
                Some(i + 2)
            } else {
                Some(i + 1)
            }
        }
        b'=' | b'!' if bytes.get(i + 1) == Some(&b'=') => Some(i + 2),
        _ => None,
    }
}

/// If a binary operator *ends* at index `i` (inclusive), return the index of
/// its first byte.
fn binary_op_start(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes[i] {
        b'+' | b'*' | b'/' | b'%' | b'<' | b'>' => Some(i),
        b'-' => Some(i), // could be unary; the literal check guards it
        b'=' if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!') => Some(i - 1),
        _ => None,
    }
}

/// Comparison operators only (for the ident-vs-literal check; assignment
/// `=` must not match).
fn compare_op_end(bytes: &[u8], i: usize) -> Option<usize> {
    if i >= bytes.len() {
        return None;
    }
    match bytes[i] {
        b'<' | b'>' => {
            if bytes.get(i + 1) == Some(&b'=') {
                Some(i + 2)
            } else {
                Some(i + 1)
            }
        }
        b'=' | b'!' if bytes.get(i + 1) == Some(&b'=') => Some(i + 2),
        _ => None,
    }
}

fn starts_with_number(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(|b| b.is_ascii_digit())
}

fn starts_with_float(bytes: &[u8], i: usize) -> bool {
    if !starts_with_number(bytes, i) {
        return false;
    }
    let mut j = i;
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'.'
}

/// The numeric literal starting at `i` is zero (`0`, `0.0`, `0.00`, `0_0.0`).
/// Anything with a nonzero digit or an exponent (`1e-9`) is nonzero.
fn literal_at_is_zero(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    let mut any = false;
    while j < bytes.len() && matches!(bytes[j], b'0'..=b'9' | b'.' | b'_') {
        if matches!(bytes[j], b'1'..=b'9') {
            return false;
        }
        any = true;
        j += 1;
    }
    // An exponent suffix (`0e3` is still zero, but `e` after digits usually
    // means `1e-9`-style nonzero) — only literals made purely of 0/./_ are
    // treated as zero.
    any && (j >= bytes.len() || !is_ident_byte(bytes[j]))
}

/// The numeric literal ending at `i` (inclusive) is zero.
fn literal_ending_is_zero(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    while j > 0 && matches!(bytes[j - 1], b'0'..=b'9' | b'.' | b'_') {
        if matches!(bytes[j - 1], b'1'..=b'9') {
            return false;
        }
        j -= 1;
    }
    j <= i
}

/// The bytes ending at `i` (inclusive) terminate a numeric literal, and
/// that literal is not part of an identifier (`x2` must not count).
fn ends_with_number(bytes: &[u8], i: usize) -> bool {
    if !bytes[i].is_ascii_digit() {
        return false;
    }
    let mut j = i;
    while j > 0 && (bytes[j - 1].is_ascii_digit() || bytes[j - 1] == b'.' || bytes[j - 1] == b'_')
    {
        j -= 1;
    }
    j == 0 || !is_ident_byte(bytes[j - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn lib_file(text: &str) -> SourceFile {
        SourceFile::from_text(text, "crates/core/src/x.rs".into(), "core".into(), false)
    }

    fn run(rule: fn(&SourceFile, &mut Vec<Finding>), text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        rule(&lib_file(text), &mut out);
        out
    }

    #[test]
    fn l1_flags_value_times_literal() {
        assert_eq!(run(l1_unit_safety, "let p = cap.value() * 1.2;").len(), 1);
        assert_eq!(run(l1_unit_safety, "let p = 0.9 + v.value();").len(), 1);
    }

    #[test]
    fn l1_flags_unit_ident_vs_float() {
        assert_eq!(run(l1_unit_safety, "if voltage < 0.54 { x(); }").len(), 1);
        assert_eq!(run(l1_unit_safety, "while total_watts >= 120.0 {}").len(), 1);
    }

    #[test]
    fn l1_clean_code_passes() {
        assert!(run(l1_unit_safety, "let v = Volt::new(0.9); let w = a.value() + b.value();").is_empty());
        assert!(run(l1_unit_safety, "if voltage < v_min { x(); }").is_empty());
        // Integer compare is index-like, not a unit bug.
        assert!(run(l1_unit_safety, "if voltage_steps > 4 {}").is_empty());
    }

    #[test]
    fn l1_zero_comparisons_are_sign_checks() {
        assert!(run(l1_unit_safety, "assert!(target.value() > 0.0, \"msg\");").is_empty());
        assert!(run(l1_unit_safety, "if 0.0 >= v.value() { x(); }").is_empty());
        assert!(run(l1_unit_safety, "if voltage <= 0.0 { x(); }").is_empty());
        // Nonzero comparison and zero *arithmetic* still flag.
        assert_eq!(run(l1_unit_safety, "if v.value() > 1e-9 { x(); }").len(), 1);
        assert_eq!(run(l1_unit_safety, "let p = q.value() + 0.0;").len(), 1);
    }

    #[test]
    fn l1_exempt_paths() {
        let f = SourceFile::from_text(
            "let x = self.0 * 1.2;",
            "crates/power-model/src/dvfs.rs".into(),
            "power-model".into(),
            false,
        );
        let mut out = Vec::new();
        l1_unit_safety(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn l2_flags_panics() {
        for bad in [
            "let x = y.unwrap();",
            "panic!(\"boom\");",
            "unreachable!()",
            "todo!()",
            "let z = q.expect(msg);",
        ] {
            assert_eq!(run(l2_no_panic, bad).len(), 1, "should flag: {bad}");
        }
    }

    #[test]
    fn l2_accepts_expect_with_message_and_tests() {
        assert!(run(l2_no_panic, "let x = y.expect(\"invariant: queue open\");").is_empty());
        assert!(run(
            l2_no_panic,
            "#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}"
        )
        .is_empty());
    }

    #[test]
    fn l3_flags_nondeterminism() {
        for bad in [
            "let t = Instant::now();",
            "use std::time::SystemTime;",
            "let mut r = thread_rng();",
            "use std::collections::HashMap;",
        ] {
            assert_eq!(run(l3_determinism, bad).len(), 1, "should flag: {bad}");
        }
    }

    #[test]
    fn l3_clean_and_masked() {
        assert!(run(l3_determinism, "let m: BTreeMap<u32, f64> = BTreeMap::new();").is_empty());
        assert!(run(l3_determinism, "// HashMap would be wrong here").is_empty());
        assert!(run(l3_determinism, "let s = \"HashMap\";").is_empty());
    }

    #[test]
    fn l5_requires_citation() {
        let path = "crates/core/src/controller/x.rs";
        let undocumented = SourceFile::from_text("pub fn go() {}", path.into(), "core".into(), false);
        let uncited = SourceFile::from_text(
            "/// Runs the loop.\npub fn go() {}",
            path.into(),
            "core".into(),
            false,
        );
        let cited = SourceFile::from_text(
            "/// Global reallocation step (paper §4.2, Eq. 7).\n#[inline]\npub fn go() {}",
            path.into(),
            "core".into(),
            false,
        );
        for (f, want) in [(&undocumented, 1), (&uncited, 1), (&cited, 0)] {
            let mut out = Vec::new();
            l5_doc_coverage(f, &mut out);
            assert_eq!(out.len(), want);
        }
    }

    #[test]
    fn allow_directive_suppresses() {
        let text = "// simlint: allow(L2)\nlet x = y.unwrap();";
        assert!(run(l2_no_panic, text).is_empty());
    }
}

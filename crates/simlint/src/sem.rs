//! The semantic rules: L6 panic-reachability, L7 lock discipline, L8
//! time-domain confusion, L9 allow hygiene.
//!
//! L6–L8 run over the token-level [`crate::graph::Workspace`] — per
//! *symbol*, not per line — so test code is excluded structurally (the
//! parser saw the `#[cfg(test)]`/`#[test]` attributes) and findings carry
//! the evidence in their `note` (the call chain from the hot loop, the
//! lock held across a channel op). L9 audits the suppression mechanism
//! itself: every `simlint: allow(...)` must carry a justification.

use std::collections::BTreeMap;

use crate::graph::ParsedFile;
use crate::lexer::TokKind;
use crate::parser::Item;
use crate::rules::LIB_CRATES;
use crate::{Finding, LoadedWorkspace, Rule};

/// Files whose fns seed the L6 reachability walk: the controller hot loop.
const L6_ROOT_FILES: &[&str] = &["crates/core/src/coordinator.rs", "crates/core/src/pid.rs"];

/// Impl types whose methods are also L6 roots wherever they live.
const L6_ROOT_IMPLS: &[&str] = &["QuantumCtl"];

/// The wall-clock quarantine for L8: profiling is *about* wall time.
const L8_QUARANTINE_FILE: &str = "crates/telemetry/src/profile.rs";
const L8_QUARANTINE_IMPLS: &[&str] = &["Profiler"];

/// Rust keywords that disqualify the preceding token from being an
/// indexed expression (`let [a, b] = …` is a pattern, not an index).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "async" | "await" | "box" | "break" | "const" | "continue" | "crate" | "dyn"
            | "else" | "enum" | "extern" | "fn" | "for" | "if" | "impl" | "in" | "let" | "loop"
            | "match" | "mod" | "move" | "mut" | "pub" | "ref" | "return" | "self" | "static"
            | "struct" | "super" | "trait" | "type" | "unsafe" | "use" | "where" | "while"
    )
}

/// Emit a finding unless an allow directive covers it.
fn push_sem(
    ws: &LoadedWorkspace,
    findings: &mut Vec<Finding>,
    rule: Rule,
    rel: &str,
    line: usize,
    note: String,
) {
    let Some(src) = ws.source_by_rel(rel) else { return };
    if line == 0 || src.is_allowed(rule, line - 1) {
        return;
    }
    let excerpt = src
        .lines
        .get(line - 1)
        .map(|l| l.raw.trim().to_string())
        .unwrap_or_default();
    findings.push(Finding {
        rule,
        file: rel.to_string(),
        line,
        excerpt,
        note,
    });
}

fn in_lib_crate(pf: &ParsedFile) -> bool {
    LIB_CRATES.contains(&pf.crate_name.as_str())
}

/// One potential panic site inside a fn body.
struct PanicSite {
    line: usize,
    what: &'static str,
}

/// Scan a fn body's token range for panic sites: `unwrap`/`expect` calls,
/// panicking macros, and index expressions.
fn panic_sites(pf: &ParsedFile, item: &Item) -> Vec<PanicSite> {
    let Some((b0, b1)) = item.body else {
        return Vec::new();
    };
    let tf = &pf.tf;
    let mut out = Vec::new();
    let mut i = b0;
    while i < b1 {
        let Some(j) = tf.next_code(i) else { break };
        if j >= b1 {
            break;
        }
        i = j + 1;
        let t = tf.text(j);
        match tf.toks[j].kind {
            TokKind::Ident => {
                let next_is = |s: &str| {
                    tf.next_code(j + 1).is_some_and(|n| tf.text(n) == s)
                };
                let prev_is_dot = tf.prev_code(j).is_some_and(|p| tf.text(p) == ".");
                if (t == "unwrap" || t == "expect") && prev_is_dot && next_is("(") {
                    out.push(PanicSite {
                        line: tf.toks[j].line,
                        what: if t == "unwrap" { "unwrap()" } else { "expect()" },
                    });
                } else if matches!(t, "panic" | "todo" | "unimplemented" | "unreachable")
                    && next_is("!")
                {
                    out.push(PanicSite {
                        line: tf.toks[j].line,
                        what: "panicking macro",
                    });
                }
            }
            TokKind::Punct if t == "[" => {
                // `expr[idx]` panics on out-of-bounds. An opening bracket
                // indexes when the previous code token ends an expression.
                let indexes = tf.prev_code(j).is_some_and(|p| {
                    let pt = tf.text(p);
                    match tf.toks[p].kind {
                        TokKind::Ident => !is_keyword(pt),
                        TokKind::Punct => pt == ")" || pt == "]",
                        _ => false,
                    }
                });
                if indexes {
                    out.push(PanicSite {
                        line: tf.toks[j].line,
                        what: "index expression",
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// L6 — panic reachability.
///
/// The controller hot loop (`coordinator.rs`, `pid.rs`, and `QuantumCtl`
/// methods) must not reach a panic site through the call graph: a panic
/// mid-quantum tears down a sweep and, in the firmware this models, the
/// power controller itself. The walk over-approximates (name-based call
/// resolution), so every finding carries its call chain for triage.
pub fn l6_panic_reachability(ws: &LoadedWorkspace, findings: &mut Vec<Finding>) {
    let g = &ws.graph;
    let mut roots = Vec::new();
    for (sid, sym) in g.symbols.iter().enumerate() {
        if sym.is_test {
            continue;
        }
        let (pf, _) = g.symbol_item(sid);
        let rooted = L6_ROOT_FILES.contains(&pf.rel.as_str())
            || sym
                .parent_impl
                .as_deref()
                .is_some_and(|p| L6_ROOT_IMPLS.contains(&p));
        if rooted {
            roots.push(sid);
        }
    }
    let reach = g.reachable_from(&roots);
    for (&sid, _) in &reach {
        let (pf, item) = g.symbol_item(sid);
        if !in_lib_crate(pf) {
            continue; // host/tool crates may panic; the hot loop never
                      // actually crosses into them (name-collision edges)
        }
        let chain = g.chain_to(&reach, sid);
        for site in panic_sites(pf, item) {
            push_sem(
                ws,
                findings,
                Rule::PanicReachability,
                &pf.rel,
                site.line,
                format!("{} reachable from hot loop via {}", site.what, chain),
            );
        }
    }
}

/// A lock guard currently live during the L7 scan of one fn body.
struct LiveGuard {
    /// The field the lock was acquired from (`queue` in
    /// `self.shared.queue.lock()`), or `"<expr>"`.
    lock_name: String,
    /// The `let` binding holding the guard, when one exists.
    binding: Option<String>,
    /// Brace depth at acquisition; let-bound guards die when the block
    /// closes, temporaries at the next `;` at this depth.
    depth: i64,
    let_bound: bool,
}

/// One observed "acquired `second` while holding `first`" event.
struct OrderEdge {
    first: String,
    second: String,
    rel: String,
    line: usize,
}

/// L7 — lock discipline.
///
/// Two checks over the worker-pool concurrency surface: (a) no channel
/// `send`/`recv` while a `Mutex` guard is live — the receiving side may
/// block on the same lock, and the pinned serial==pooled property only
/// holds when replies drain independently of the queue lock; (b) every
/// pair of locks is acquired in one global order.
pub fn l7_lock_discipline(ws: &LoadedWorkspace, findings: &mut Vec<Finding>) {
    let g = &ws.graph;
    let mut edges: Vec<OrderEdge> = Vec::new();
    for (sid, sym) in g.symbols.iter().enumerate() {
        if sym.is_test {
            continue;
        }
        let (pf, item) = g.symbol_item(sid);
        if !in_lib_crate(pf) {
            continue;
        }
        scan_fn_locks(ws, pf, item, findings, &mut edges);
    }

    // Inconsistent acquisition order: both (A then B) and (B then A) seen.
    let mut seen: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for e in &edges {
        seen.entry((e.first.clone(), e.second.clone()))
            .or_insert((e.rel.clone(), e.line));
    }
    for e in &edges {
        if e.first == e.second {
            continue;
        }
        if let Some((orel, oline)) = seen.get(&(e.second.clone(), e.first.clone())) {
            push_sem(
                ws,
                findings,
                Rule::LockDiscipline,
                &e.rel,
                e.line,
                format!(
                    "lock `{}` acquired while holding `{}`, but the reverse order exists at {}:{}",
                    e.second, e.first, orel, oline
                ),
            );
        }
    }
}

fn scan_fn_locks(
    ws: &LoadedWorkspace,
    pf: &ParsedFile,
    item: &Item,
    findings: &mut Vec<Finding>,
    edges: &mut Vec<OrderEdge>,
) {
    let Some((b0, b1)) = item.body else { return };
    let tf = &pf.tf;
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth: i64 = 0;
    // Token index where the current statement started, for `let` lookback.
    let mut stmt_start = b0;
    let mut i = b0;
    while i < b1 {
        let Some(j) = tf.next_code(i) else { break };
        if j >= b1 {
            break;
        }
        i = j + 1;
        let t = tf.text(j);
        match t {
            "{" => {
                depth += 1;
                stmt_start = j + 1;
            }
            "}" => {
                depth -= 1;
                guards.retain(|gd| gd.depth <= depth);
                stmt_start = j + 1;
            }
            ";" => {
                guards.retain(|gd| gd.let_bound || gd.depth != depth);
                stmt_start = j + 1;
            }
            _ if tf.toks[j].kind == TokKind::Ident => {
                let next_is = |s: &str| tf.next_code(j + 1).is_some_and(|n| tf.text(n) == s);
                let prev_is_dot = tf.prev_code(j).is_some_and(|p| tf.text(p) == ".");
                if t == "lock" && prev_is_dot && next_is("(") {
                    let lock_name = receiver_name(pf, j);
                    let (let_bound, binding) = stmt_let_binding(pf, stmt_start, j);
                    for held in &guards {
                        edges.push(OrderEdge {
                            first: held.lock_name.clone(),
                            second: lock_name.clone(),
                            rel: pf.rel.clone(),
                            line: tf.toks[j].line,
                        });
                    }
                    guards.push(LiveGuard {
                        lock_name,
                        binding,
                        depth,
                        let_bound,
                    });
                } else if t == "drop" && next_is("(") {
                    // `drop(guard)` releases the named binding.
                    if let Some(arg) = tf
                        .next_code(j + 1)
                        .and_then(|open| tf.next_code(open + 1))
                    {
                        let name = tf.text(arg).to_string();
                        guards.retain(|gd| gd.binding.as_deref() != Some(name.as_str()));
                    }
                } else if matches!(t, "send" | "recv" | "recv_timeout" | "try_recv" | "try_send")
                    && prev_is_dot
                    && next_is("(")
                {
                    if let Some(held) = guards.last() {
                        push_sem(
                            ws,
                            findings,
                            Rule::LockDiscipline,
                            &pf.rel,
                            tf.toks[j].line,
                            format!(
                                "channel `{}` while holding lock `{}` in {}",
                                t,
                                held.lock_name,
                                item.qualified()
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// The field name a `.lock()` call is invoked on: the ident directly
/// before the final `.`.
fn receiver_name(pf: &ParsedFile, lock_idx: usize) -> String {
    let tf = &pf.tf;
    let dot = tf.prev_code(lock_idx);
    let recv = dot.and_then(|d| tf.prev_code(d));
    match recv {
        Some(r) if tf.toks[r].kind == TokKind::Ident => tf.text(r).to_string(),
        _ => "<expr>".to_string(),
    }
}

/// Whether the statement `[stmt_start, lock_idx]` is a `let` binding, and
/// the bound name (first ident after `let`, skipping `mut`/patterns).
fn stmt_let_binding(pf: &ParsedFile, stmt_start: usize, lock_idx: usize) -> (bool, Option<String>) {
    let tf = &pf.tf;
    let mut k = stmt_start;
    while k <= lock_idx {
        let Some(j) = tf.next_code(k) else { break };
        if j > lock_idx {
            break;
        }
        k = j + 1;
        if tf.toks[j].kind == TokKind::Ident && tf.text(j) == "let" {
            // First ident after `let` that isn't `mut` / `ref`.
            let mut m = j + 1;
            while let Some(n) = tf.next_code(m) {
                if n > lock_idx {
                    break;
                }
                m = n + 1;
                let nt = tf.text(n);
                if tf.toks[n].kind == TokKind::Ident && nt != "mut" && nt != "ref" {
                    return (true, Some(nt.to_string()));
                }
                if nt == "=" {
                    break;
                }
            }
            return (true, None);
        }
    }
    (false, None)
}

/// Is this numeric literal a float? (`1.5`, `2e9`, `0.0f64`, `1f32` —
/// but not `0x1e5` or plain integers.)
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.')
        || text.contains("f32")
        || text.contains("f64")
        || text.contains('e')
        || text.contains('E')
}

/// L8 — time-domain confusion.
///
/// Simulation code runs on simulated time: wall-clock types (`Instant`,
/// `SystemTime`) outside the quarantined `Profiler` mean a wall-time
/// quantity is leaking into control decisions. Float `==`/`!=` against a
/// literal is the same class of bug in the value domain — control math
/// accumulates rounding, so exact comparison encodes a wall-of-luck
/// invariant. Per-symbol: the whole fn is the unit of quarantine.
pub fn l8_time_domain(ws: &LoadedWorkspace, findings: &mut Vec<Finding>) {
    let g = &ws.graph;
    for (sid, sym) in g.symbols.iter().enumerate() {
        if sym.is_test {
            continue;
        }
        let (pf, item) = g.symbol_item(sid);
        if !in_lib_crate(pf) {
            continue;
        }
        if pf.rel == L8_QUARANTINE_FILE
            || sym
                .parent_impl
                .as_deref()
                .is_some_and(|p| L8_QUARANTINE_IMPLS.contains(&p))
        {
            continue;
        }
        let Some((_, b1)) = item.body else { continue };
        let tf = &pf.tf;
        let mut i = item.first_tok;
        while i < b1 {
            let Some(j) = tf.next_code(i) else { break };
            if j >= b1 {
                break;
            }
            i = j + 1;
            let t = tf.text(j);
            match tf.toks[j].kind {
                TokKind::Ident if t == "Instant" || t == "SystemTime" => {
                    push_sem(
                        ws,
                        findings,
                        Rule::TimeDomain,
                        &pf.rel,
                        tf.toks[j].line,
                        format!("wall-clock type `{}` in {}", t, item.qualified()),
                    );
                }
                TokKind::Punct if t == "==" || t == "!=" => {
                    let float_side = |idx: Option<usize>| {
                        idx.is_some_and(|k| {
                            tf.toks[k].kind == TokKind::Num && is_float_literal(tf.text(k))
                        })
                    };
                    if float_side(tf.prev_code(j)) || float_side(tf.next_code(j + 1)) {
                        push_sem(
                            ws,
                            findings,
                            Rule::TimeDomain,
                            &pf.rel,
                            tf.toks[j].line,
                            format!("exact float comparison in {}", item.qualified()),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// L9 — allow hygiene.
///
/// Every suppression must say why: `// simlint: allow(L2): <reason>`.
/// A bare allow is a decision with no audit trail.
pub fn l9_allow_hygiene(ws: &LoadedWorkspace, findings: &mut Vec<Finding>) {
    for src in &ws.sources {
        for site in &src.directives {
            if site.justified {
                continue;
            }
            let rules: Vec<&str> = site.rules.iter().map(|r| r.code()).collect();
            push_sem(
                ws,
                findings,
                Rule::AllowHygiene,
                &src.rel_path,
                site.line + 1,
                format!(
                    "bare `allow({})` without justification — append `: <reason>`",
                    rules.join(",")
                ),
            );
        }
    }
}

//! Source-file model for the line rules.
//!
//! simlint deliberately avoids a full parser (`syn` would be a registry
//! dependency, which rule L4 forbids): it works on a *masked* view of each
//! file in which string-literal contents and comments are blanked out, plus
//! per-line metadata — whether the line sits inside a `#[cfg(test)]` region
//! and which rules an inline `// simlint: allow(...)` directive suppresses.
//! That is enough to make substring rules precise: a `panic!` inside a
//! string or a doc comment never fires, and test code is exempt where a rule
//! says so.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::Rule;

/// One analyzed line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The raw text as read from disk.
    pub raw: String,
    /// The text with comments blanked and string interiors replaced by
    /// spaces (delimiting quotes are kept, so `.expect("...")` still shows
    /// its literal-ness). Columns line up with `raw`.
    pub masked: String,
    /// True when the line is inside a `#[cfg(test)]` item's braces (or the
    /// whole file is a test/bench/example target).
    pub in_test: bool,
    /// Rules suppressed on this line by an allow directive on it or on the
    /// directly preceding line.
    pub allowed: Vec<Rule>,
}

/// One `simlint: allow(...)` / `allow-file(...)` directive occurrence,
/// kept for the L9 hygiene audit and for item-level extension.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// 0-based line the directive appears on.
    pub line: usize,
    pub rules: Vec<Rule>,
    pub file_level: bool,
    /// Whether a justification trails the directive:
    /// `// simlint: allow(L2): queue poisoning is unrecoverable here`.
    pub justified: bool,
}

/// A loaded, masked source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root (always with `/` separators).
    pub rel_path: String,
    /// The crate directory name under `crates/` (e.g. `"sim-core"`), or
    /// `""` for the workspace-root package.
    pub crate_name: String,
    /// Analyzed lines, 0-indexed (`lines[0]` is line 1).
    pub lines: Vec<Line>,
    /// Rules suppressed for the whole file via `simlint: allow-file(...)`.
    pub file_allowed: Vec<Rule>,
    /// Every allow directive in the file, in line order.
    pub directives: Vec<AllowSite>,
    /// Item-level suppressions: `(rule, first_line0, last_line0)` ranges
    /// grafted on by [`attach_item_allows`] when a directive comment sits
    /// directly above an item header.
    pub item_allowed: Vec<(Rule, usize, usize)>,
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.rel_path)
    }
}

/// Lexer carry-state across lines.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    BlockComment(u32),
    /// Inside a raw string literal with `n` terminating hashes.
    RawString(u32),
}

/// Directives found in comment text.
#[derive(Debug, Default)]
struct Directives {
    line_allowed: Vec<Rule>,
    file_allowed: Vec<Rule>,
    /// `(rules, file_level, justified)` per directive occurrence.
    sites: Vec<(Vec<Rule>, bool, bool)>,
}

/// A directive is justified when non-trivial text follows the closing
/// paren — `// simlint: allow(L2): poisoning is unrecoverable here`.
/// Separator punctuation alone does not count.
fn has_justification(tail_after_paren: &str) -> bool {
    let text = tail_after_paren.trim_start_matches(|c: char| {
        c.is_whitespace() || matches!(c, ':' | '-' | '—' | ';' | ',')
    });
    text.trim().len() >= 3
}

fn parse_directives(comment: &str, out: &mut Directives) {
    for (needle, is_file) in [("simlint: allow-file(", true), ("simlint: allow(", false)] {
        let mut rest = comment;
        while let Some(pos) = rest.find(needle) {
            let tail = &rest[pos + needle.len()..];
            if let Some(end) = tail.find(')') {
                let mut rules = Vec::new();
                for token in tail[..end].split(',') {
                    if let Some(rule) = Rule::parse(token.trim()) {
                        if is_file {
                            out.file_allowed.push(rule);
                        } else {
                            out.line_allowed.push(rule);
                        }
                        rules.push(rule);
                    }
                }
                if !rules.is_empty() {
                    out.sites.push((rules, is_file, has_justification(&tail[end + 1..])));
                }
                rest = &tail[end..];
            } else {
                break;
            }
        }
        // `allow-file(` also contains `allow(`? No: the search above uses
        // distinct needles and `simlint: allow(` does not occur inside
        // `simlint: allow-file(`, so no double-count is possible.
    }
}

/// Mask one line, updating `mode`, collecting comment text into `comments`.
fn mask_line(raw: &str, mode: &mut Mode, comments: &mut String) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while i < bytes.len() {
        match *mode {
            Mode::BlockComment(depth) => {
                if bytes[i..].starts_with(b"*/") {
                    comments.push(' ');
                    out.extend_from_slice(b"  ");
                    i += 2;
                    *mode = if depth > 1 {
                        Mode::BlockComment(depth - 1)
                    } else {
                        Mode::Code
                    };
                } else if bytes[i..].starts_with(b"/*") {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    *mode = Mode::BlockComment(depth + 1);
                } else {
                    comments.push(bytes[i] as char);
                    out.push(b' ');
                    i += 1;
                }
            }
            Mode::RawString(hashes) => {
                let mut close = Vec::with_capacity(1 + hashes as usize);
                close.push(b'"');
                close.extend(std::iter::repeat(b'#').take(hashes as usize));
                if bytes[i..].starts_with(&close) {
                    out.extend_from_slice(&close);
                    i += close.len();
                    *mode = Mode::Code;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            Mode::Code => {
                if bytes[i..].starts_with(b"//") {
                    // Line comment (incl. doc comments): blank the rest,
                    // keep its text for directive parsing.
                    comments.push_str(&raw[i..]);
                    out.extend(std::iter::repeat(b' ').take(bytes.len() - i));
                    i = bytes.len();
                } else if bytes[i..].starts_with(b"/*") {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    *mode = Mode::BlockComment(1);
                } else if bytes[i] == b'"' {
                    // Ordinary string: blank interior, keep the quotes.
                    out.push(b'"');
                    i += 1;
                    while i < bytes.len() {
                        if bytes[i] == b'\\' && i + 1 < bytes.len() {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        } else if bytes[i] == b'"' {
                            out.push(b'"');
                            i += 1;
                            break;
                        } else {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                    // An unterminated ordinary string continuing onto the
                    // next line (multi-line string literal): approximate by
                    // treating the remainder as a raw string with 0 hashes.
                    if i >= bytes.len() && !raw[..i].ends_with('"') {
                        *mode = Mode::RawString(0);
                    }
                } else if bytes[i] == b'r'
                    && (bytes[i + 1..].first() == Some(&b'"') || bytes[i + 1..].first() == Some(&b'#'))
                    && !prev_is_ident(&out)
                {
                    // Raw string: r"..." or r#"..."# etc.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while j < bytes.len() && bytes[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'"' {
                        out.extend(std::iter::repeat(b' ').take(j - i));
                        out.push(b'"');
                        i = j + 1;
                        *mode = Mode::RawString(hashes);
                    } else {
                        out.push(bytes[i]);
                        i += 1;
                    }
                } else if bytes[i] == b'\'' {
                    // Char literal vs lifetime. `'x'` / `'\n'` are literals;
                    // `'a` (no closing quote nearby) is a lifetime.
                    let lit_len = char_literal_len(&bytes[i..]);
                    if let Some(len) = lit_len {
                        out.push(b'\'');
                        out.extend(std::iter::repeat(b' ').take(len - 2));
                        out.push(b'\'');
                        i += len;
                    } else {
                        out.push(b'\'');
                        i += 1;
                    }
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Length in bytes of a char literal starting at `bytes[0] == b'\''`, or
/// `None` if this is a lifetime.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < 3 {
        return None;
    }
    if bytes[1] == b'\\' {
        // Escape: '\n', '\'', '\u{...}', '\x41'.
        let mut j = 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        (j < bytes.len()).then_some(j + 1)
    } else if bytes[2] == b'\'' && bytes[1] != b'\'' {
        Some(3)
    } else {
        // Multi-byte UTF-8 char literal: find the closing quote within a
        // small window.
        let limit = bytes.len().min(6);
        (2..limit).find(|&j| bytes[j] == b'\'').map(|j| j + 1)
    }
}

impl SourceFile {
    /// Load and analyze `abs_path`. `whole_file_is_test` marks every line as
    /// test code (integration tests, benches, examples).
    pub fn load(
        abs_path: &Path,
        rel_path: String,
        crate_name: String,
        whole_file_is_test: bool,
    ) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(abs_path)?;
        Ok(Self::from_text(
            &text,
            rel_path,
            crate_name,
            whole_file_is_test,
        ))
    }

    /// Analyze in-memory source (used by the fixture tests).
    pub fn from_text(
        text: &str,
        rel_path: String,
        crate_name: String,
        whole_file_is_test: bool,
    ) -> SourceFile {
        let mut mode = Mode::Code;
        let mut lines: Vec<Line> = Vec::new();
        let mut file_allowed: Vec<Rule> = Vec::new();
        let mut prev_allowed: Vec<Rule> = Vec::new();
        let mut all_sites: Vec<AllowSite> = Vec::new();

        // Brace-depth tracking for `#[cfg(test)]` regions.
        let mut depth: i64 = 0;
        let mut pending_cfg_test = false;
        // Depth *outside* each active test region; region ends when depth
        // returns to it.
        let mut test_region_stack: Vec<i64> = Vec::new();

        for raw in text.lines() {
            let mut comments = String::new();
            let masked = mask_line(raw, &mut mode, &mut comments);

            let mut directives = Directives::default();
            parse_directives(&comments, &mut directives);
            file_allowed.extend(directives.file_allowed.iter().copied());
            for (rules, file_level, justified) in directives.sites.drain(..) {
                all_sites.push(AllowSite {
                    line: lines.len(),
                    rules,
                    file_level,
                    justified,
                });
            }

            let starts_in_test = whole_file_is_test || !test_region_stack.is_empty();

            if masked.contains("#[cfg(test)") || masked.contains("#[cfg(all(test") {
                pending_cfg_test = true;
            }

            // Walk braces; if a pending cfg(test) attribute reaches its
            // item's opening brace, a test region begins there.
            for b in masked.bytes() {
                match b {
                    b'{' => {
                        if pending_cfg_test {
                            test_region_stack.push(depth);
                            pending_cfg_test = false;
                        }
                        depth += 1;
                    }
                    b'}' => {
                        depth -= 1;
                        if test_region_stack.last().is_some_and(|&d| depth <= d) {
                            test_region_stack.pop();
                        }
                    }
                    _ => {}
                }
            }

            // A line is test code if it starts or ends inside a region (so
            // the `#[cfg(test)]`/`mod tests {` opener and the closing `}`
            // count too once pending).
            let in_test = starts_in_test || !test_region_stack.is_empty() || pending_cfg_test;

            let mut allowed = directives.line_allowed.clone();
            allowed.extend(prev_allowed.iter().copied());
            // A comment-only line's directive carries down through the
            // rest of the comment block to the first code line (so a
            // justification may wrap); a trailing directive on a code line
            // covers just that line.
            prev_allowed = if masked.trim().is_empty() {
                allowed.clone()
            } else {
                Vec::new()
            };

            lines.push(Line {
                raw: raw.to_string(),
                masked,
                in_test,
                allowed,
            });
        }

        file_allowed.sort_by_key(|r| r.code());
        file_allowed.dedup();
        SourceFile {
            rel_path,
            crate_name,
            lines,
            file_allowed,
            directives: all_sites,
            item_allowed: Vec::new(),
        }
    }

    /// Whether `rule` is suppressed at `line_idx` (0-based) by an inline,
    /// item-level, or file-level allow directive.
    pub fn is_allowed(&self, rule: Rule, line_idx: usize) -> bool {
        self.file_allowed.contains(&rule)
            || self
                .lines
                .get(line_idx)
                .is_some_and(|l| l.allowed.contains(&rule))
            || self
                .item_allowed
                .iter()
                .any(|&(r, s, e)| r == rule && (s..=e).contains(&line_idx))
    }
}

/// Extend comment-only allow directives that sit directly above an item
/// header (optionally separated by attribute lines) to cover the item's
/// whole extent. Called once per workspace load, after parsing.
pub fn attach_item_allows(sources: &mut [SourceFile], ws: &crate::graph::Workspace) {
    for pf in &ws.files {
        let Some(src) = sources.iter_mut().find(|s| s.rel_path == pf.rel) else {
            continue;
        };
        for item in &pf.items {
            if item.line < 2 {
                continue;
            }
            // Walk upward from the line above the item keyword: skip
            // attribute lines (`#[…]` may sit between the comment and the
            // keyword), then collect directives from the whole contiguous
            // comment block (a justification may wrap over several lines).
            let mut idx = item.line - 2; // 0-based line above
            loop {
                let Some(line) = src.lines.get(idx) else { break };
                let t = line.masked.trim();
                if t.starts_with('#') && idx > 0 {
                    idx -= 1;
                    continue;
                }
                break;
            }
            let mut rules: Vec<Rule> = Vec::new();
            loop {
                let Some(line) = src.lines.get(idx) else { break };
                if !line.masked.trim().is_empty() || line.raw.trim().is_empty() {
                    break; // end of the comment block
                }
                rules.extend(
                    src.directives
                        .iter()
                        .filter(|d| d.line == idx && !d.file_level)
                        .flat_map(|d| d.rules.iter().copied()),
                );
                if idx == 0 {
                    break;
                }
                idx -= 1;
            }
            for rule in rules {
                src.item_allowed
                    .push((rule, item.line - 1, item.end_line.saturating_sub(1)));
            }
        }
    }
}

/// Relative-path helper used by the workspace walker.
pub fn rel_to(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Build a `PathBuf` from a workspace-relative string.
pub fn abs_from(root: &Path, rel: &str) -> PathBuf {
    root.join(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::from_text(text, "crates/x/src/lib.rs".into(), "x".into(), false)
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let f = file("let x = \"panic!()\"; // unwrap()\nlet y = 1; /* Instant::now */");
        assert!(!f.lines[0].masked.contains("panic"));
        assert!(!f.lines[0].masked.contains("unwrap"));
        assert!(f.lines[0].masked.contains("let x = "));
        assert!(!f.lines[1].masked.contains("Instant"));
    }

    #[test]
    fn multiline_block_comment_masked() {
        let f = file("/* one\nunwrap()\n*/ let z = 3;");
        assert!(!f.lines[1].masked.contains("unwrap"));
        assert!(f.lines[2].masked.contains("let z = 3;"));
    }

    #[test]
    fn raw_string_masked() {
        let f = file("let s = r#\"thread_rng\"#; let t = 5;");
        assert!(!f.lines[0].masked.contains("thread_rng"));
        assert!(f.lines[0].masked.contains("let t = 5;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = file("fn f<'a>(x: &'a str) { let c = '\"'; let d = x.find('}'); }");
        // The double-quote char literal must not open a string.
        assert!(f.lines[0].masked.contains("let d = x.find("));
    }

    #[test]
    fn expect_keeps_quote_delimiters() {
        let f = file("foo.expect(\"queue open\");");
        assert!(f.lines[0].masked.contains(".expect(\""));
    }

    #[test]
    fn cfg_test_region_tracked() {
        let f = file(
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}",
        );
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line counts as test");
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test, "region must close");
    }

    #[test]
    fn allow_directive_covers_same_and_next_line() {
        let f = file(
            "// simlint: allow(L2)\nfoo.unwrap();\nbar.unwrap(); // simlint: allow(no-panic)\nbaz.unwrap();",
        );
        assert!(f.is_allowed(Rule::NoPanic, 1));
        assert!(f.is_allowed(Rule::NoPanic, 2));
        assert!(!f.is_allowed(Rule::NoPanic, 3));
    }

    #[test]
    fn allow_file_directive() {
        let f = file("//! simlint: allow-file(L3)\nuse std::collections::HashMap;");
        assert!(f.is_allowed(Rule::Determinism, 1));
        assert!(!f.is_allowed(Rule::NoPanic, 1));
    }
}

//! Fixture tests: every rule must trip on its dedicated fixture under
//! `tests/fixtures/`, and the allowlist must silence it. The fixtures are
//! plain text (never compiled, and the workspace scanner skips the
//! `tests/fixtures/` path), so they can contain arbitrarily bad code.

use std::path::Path;

use simlint::manifest::{l4_dep_layering, Manifest};
use simlint::rules;
use simlint::source::SourceFile;
use simlint::{Finding, Rule};

fn fixture_text(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Load a fixture as if it lived at `rel_path` in crate `crate_name`.
fn fixture_as(name: &str, rel_path: &str, crate_name: &str) -> SourceFile {
    SourceFile::from_text(&fixture_text(name), rel_path.into(), crate_name.into(), false)
}

fn run_rule(rule: fn(&SourceFile, &mut Vec<Finding>), file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    rule(file, &mut out);
    out
}

#[test]
fn l1_fixture_trips_unit_safety() {
    let f = fixture_as("l1_unit.rs", "crates/core/src/fixture.rs", "core");
    let findings = run_rule(rules::l1_unit_safety, &f);
    assert_eq!(findings.len(), 4, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::UnitSafety));
}

#[test]
fn l2_fixture_trips_no_panic() {
    let f = fixture_as("l2_panic.rs", "crates/core/src/fixture.rs", "core");
    let findings = run_rule(rules::l2_no_panic, &f);
    assert_eq!(findings.len(), 5, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::NoPanic));
}

#[test]
fn l3_fixture_trips_determinism() {
    let f = fixture_as("l3_nondet.rs", "crates/core/src/fixture.rs", "core");
    let findings = run_rule(rules::l3_determinism, &f);
    // Instant::now, SystemTime (×2: return type + body), thread_rng,
    // HashMap (×2: return type + body).
    assert!(findings.len() >= 4, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Determinism));
}

#[test]
fn l4_fixture_trips_dep_layering() {
    let root = Manifest::parse(
        "[workspace]\n[workspace.dependencies]\nhcapp = { path = \"crates/core\" }\n",
        "Cargo.toml".into(),
    );
    let bad = Manifest::parse(&fixture_text("l4_bad.toml"), "crates/sim-core/Cargo.toml".into());
    let mut findings = Vec::new();
    l4_dep_layering(&[root, bad], &mut findings);
    let excerpts: Vec<&str> = findings.iter().map(|f| f.excerpt.as_str()).collect();
    assert!(
        excerpts.iter().any(|e| e.contains("registry")),
        "{excerpts:#?}"
    );
    assert!(
        excerpts.iter().any(|e| e.contains("criterion")),
        "{excerpts:#?}"
    );
    assert!(
        excerpts.iter().any(|e| e.contains("hierarchy")),
        "{excerpts:#?}"
    );
}

#[test]
fn l5_fixture_trips_doc_coverage() {
    let f = fixture_as(
        "l5_uncited.rs",
        "crates/core/src/controller/fixture.rs",
        "core",
    );
    let findings = run_rule(rules::l5_doc_coverage, &f);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::DocCoverage));
}

#[test]
fn rules_stay_in_scope() {
    // The same bad code outside a simulation crate is not simlint's
    // business (the cli/experiments hosts may use HashMap etc.).
    let f = fixture_as("l3_nondet.rs", "crates/experiments/src/fixture.rs", "experiments");
    assert!(run_rule(rules::l3_determinism, &f).is_empty());
    // And L5 only applies under crates/core/src/controller/.
    let f = fixture_as("l5_uncited.rs", "crates/core/src/fixture.rs", "core");
    assert!(run_rule(rules::l5_doc_coverage, &f).is_empty());
}

#[test]
fn allow_directives_silence_fixture_findings() {
    // Prefix every offending line with an allow comment line.
    let raw = fixture_text("l2_panic.rs");
    let patched: String = raw
        .lines()
        .map(|l| {
            if l.contains("unwrap")
                || l.contains("panic!")
                || l.contains("todo!")
                || l.contains("unreachable!")
                || l.contains(".expect(")
            {
                format!("    // simlint: allow(no-panic)\n{l}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let f = SourceFile::from_text(&patched, "crates/core/src/fixture.rs".into(), "core".into(), false);
    assert!(run_rule(rules::l2_no_panic, &f).is_empty());
}

#[test]
fn allow_file_directive_silences_whole_fixture() {
    let raw = format!("//! simlint: allow-file(L3)\n{}", fixture_text("l3_nondet.rs"));
    let f = SourceFile::from_text(&raw, "crates/core/src/fixture.rs".into(), "core".into(), false);
    assert!(run_rule(rules::l3_determinism, &f).is_empty());
}

#[test]
fn cfg_test_code_is_exempt_from_l2_and_l3() {
    let wrapped = format!(
        "#[cfg(test)]\nmod tests {{\n{}\n}}\n",
        fixture_text("l2_panic.rs")
    );
    let f = SourceFile::from_text(&wrapped, "crates/core/src/x.rs".into(), "core".into(), false);
    assert!(run_rule(rules::l2_no_panic, &f).is_empty());
}

//! Fixture tests: every rule must trip on its dedicated fixture under
//! `tests/fixtures/`, and the allowlist must silence it. The fixtures are
//! plain text (never compiled, and the workspace scanner skips the
//! `tests/fixtures/` path), so they can contain arbitrarily bad code.

use std::path::Path;

use simlint::manifest::{l4_dep_layering, Manifest};
use simlint::rules;
use simlint::source::SourceFile;
use simlint::{Finding, Rule};

fn fixture_text(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Load a fixture as if it lived at `rel_path` in crate `crate_name`.
fn fixture_as(name: &str, rel_path: &str, crate_name: &str) -> SourceFile {
    SourceFile::from_text(&fixture_text(name), rel_path.into(), crate_name.into(), false)
}

fn run_rule(rule: fn(&SourceFile, &mut Vec<Finding>), file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    rule(file, &mut out);
    out
}

#[test]
fn l1_fixture_trips_unit_safety() {
    let f = fixture_as("l1_unit.rs", "crates/core/src/fixture.rs", "core");
    let findings = run_rule(rules::l1_unit_safety, &f);
    assert_eq!(findings.len(), 4, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::UnitSafety));
}

#[test]
fn l2_fixture_trips_no_panic() {
    let f = fixture_as("l2_panic.rs", "crates/core/src/fixture.rs", "core");
    let findings = run_rule(rules::l2_no_panic, &f);
    assert_eq!(findings.len(), 5, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::NoPanic));
}

#[test]
fn l3_fixture_trips_determinism() {
    let f = fixture_as("l3_nondet.rs", "crates/core/src/fixture.rs", "core");
    let findings = run_rule(rules::l3_determinism, &f);
    // Instant::now, SystemTime (×2: return type + body), thread_rng,
    // HashMap (×2: return type + body).
    assert!(findings.len() >= 4, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Determinism));
}

#[test]
fn l4_fixture_trips_dep_layering() {
    let root = Manifest::parse(
        "[workspace]\n[workspace.dependencies]\nhcapp = { path = \"crates/core\" }\n",
        "Cargo.toml".into(),
    );
    let bad = Manifest::parse(&fixture_text("l4_bad.toml"), "crates/sim-core/Cargo.toml".into());
    let mut findings = Vec::new();
    l4_dep_layering(&[root, bad], &mut findings);
    let excerpts: Vec<&str> = findings.iter().map(|f| f.excerpt.as_str()).collect();
    assert!(
        excerpts.iter().any(|e| e.contains("registry")),
        "{excerpts:#?}"
    );
    assert!(
        excerpts.iter().any(|e| e.contains("criterion")),
        "{excerpts:#?}"
    );
    assert!(
        excerpts.iter().any(|e| e.contains("hierarchy")),
        "{excerpts:#?}"
    );
}

#[test]
fn l5_fixture_trips_doc_coverage() {
    let f = fixture_as(
        "l5_uncited.rs",
        "crates/core/src/controller/fixture.rs",
        "core",
    );
    let findings = run_rule(rules::l5_doc_coverage, &f);
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == Rule::DocCoverage));
}

#[test]
fn rules_stay_in_scope() {
    // The same bad code outside a simulation crate is not simlint's
    // business (the cli/experiments hosts may use HashMap etc.).
    let f = fixture_as("l3_nondet.rs", "crates/experiments/src/fixture.rs", "experiments");
    assert!(run_rule(rules::l3_determinism, &f).is_empty());
    // And L5 only applies under crates/core/src/controller/.
    let f = fixture_as("l5_uncited.rs", "crates/core/src/fixture.rs", "core");
    assert!(run_rule(rules::l5_doc_coverage, &f).is_empty());
}

#[test]
fn allow_directives_silence_fixture_findings() {
    // Prefix every offending line with an allow comment line.
    let raw = fixture_text("l2_panic.rs");
    let patched: String = raw
        .lines()
        .map(|l| {
            if l.contains("unwrap")
                || l.contains("panic!")
                || l.contains("todo!")
                || l.contains("unreachable!")
                || l.contains(".expect(")
            {
                format!("    // simlint: allow(no-panic)\n{l}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let f = SourceFile::from_text(&patched, "crates/core/src/fixture.rs".into(), "core".into(), false);
    assert!(run_rule(rules::l2_no_panic, &f).is_empty());
}

#[test]
fn allow_file_directive_silences_whole_fixture() {
    let raw = format!("//! simlint: allow-file(L3)\n{}", fixture_text("l3_nondet.rs"));
    let f = SourceFile::from_text(&raw, "crates/core/src/fixture.rs".into(), "core".into(), false);
    assert!(run_rule(rules::l3_determinism, &f).is_empty());
}

// ---- semantic rules (L6–L8): fixtures become an in-memory workspace ----

use simlint::LoadedWorkspace;

/// Load fixtures into an in-memory workspace at the given rel paths, so
/// the semantic rules see a symbol graph.
fn fixture_workspace(files: &[(&str, &str)]) -> LoadedWorkspace {
    let texts: Vec<(String, String)> = files
        .iter()
        .map(|(fixture, rel)| (rel.to_string(), fixture_text(fixture)))
        .collect();
    let refs: Vec<(&str, &str)> = texts.iter().map(|(r, t)| (r.as_str(), t.as_str())).collect();
    LoadedWorkspace::from_texts(&refs)
}

fn json(findings: &[Finding]) -> Vec<String> {
    findings.iter().map(|f| f.to_json()).collect()
}

#[test]
fn l6_fixture_golden_json() {
    let ws = fixture_workspace(&[("l6_reach.rs", "crates/core/src/fx_l6.rs")]);
    let findings = ws.check(&[Rule::PanicReachability]);
    assert_eq!(
        json(&findings),
        vec![
            r#"{"rule":"L6","name":"panic-reachability","file":"crates/core/src/fx_l6.rs","line":18,"excerpt":"raw.unwrap()","note":"unwrap() reachable from hot loop via QuantumCtl::step -> decode"}"#,
            r#"{"rule":"L6","name":"panic-reachability","file":"crates/core/src/fx_l6.rs","line":22,"excerpt":"h[0]","note":"index expression reachable from hot loop via QuantumCtl::step -> latest"}"#,
        ]
    );
}

#[test]
fn l7_fixture_golden_json() {
    let ws = fixture_workspace(&[("l7_lock.rs", "crates/core/src/fx_l7.rs")]);
    let findings = ws.check(&[Rule::LockDiscipline]);
    assert_eq!(
        json(&findings),
        vec![
            r#"{"rule":"L7","name":"lock-discipline","file":"crates/core/src/fx_l7.rs","line":17,"excerpt":"self.tx.send(7);","note":"channel `send` while holding lock `queue` in Pool::send_while_locked"}"#,
            r#"{"rule":"L7","name":"lock-discipline","file":"crates/core/src/fx_l7.rs","line":23,"excerpt":"let b = self.merge.lock();","note":"lock `merge` acquired while holding `queue`, but the reverse order exists at crates/core/src/fx_l7.rs:30"}"#,
            r#"{"rule":"L7","name":"lock-discipline","file":"crates/core/src/fx_l7.rs","line":30,"excerpt":"let a = self.queue.lock();","note":"lock `queue` acquired while holding `merge`, but the reverse order exists at crates/core/src/fx_l7.rs:23"}"#,
        ]
    );
}

#[test]
fn l8_fixture_golden_json() {
    let ws = fixture_workspace(&[("l8_time.rs", "crates/core/src/fx_l8.rs")]);
    let findings = ws.check(&[Rule::TimeDomain]);
    assert_eq!(
        json(&findings),
        vec![
            r#"{"rule":"L8","name":"time-domain","file":"crates/core/src/fx_l8.rs","line":8,"excerpt":"let t0 = Instant::now();","note":"wall-clock type `Instant` in leaks_wall_clock"}"#,
            r#"{"rule":"L8","name":"time-domain","file":"crates/core/src/fx_l8.rs","line":13,"excerpt":"power == 1.5","note":"exact float comparison in exact_float_compare"}"#,
        ]
    );
}

#[test]
fn l6_item_level_allow_silences_whole_fn() {
    // An item-level allow above `decode` covers every line of its body.
    let raw = fixture_text("l6_reach.rs").replace(
        "fn decode(raw: Option<f64>) -> f64 {",
        "// simlint: allow(L6): fixture demonstrates item-level suppression\nfn decode(raw: Option<f64>) -> f64 {",
    );
    let ws = LoadedWorkspace::from_texts(&[("crates/core/src/fx_l6.rs", raw.as_str())]);
    let findings = ws.check(&[Rule::PanicReachability]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].excerpt.contains("h[0]"), "{findings:#?}");
}

#[test]
fn l9_flags_bare_allows_and_accepts_justified_ones() {
    let src = "\
// simlint: allow(L2)
pub fn bare() {}

// simlint: allow(L2): fixture needs a justified directive here
pub fn justified() {}
";
    let ws = LoadedWorkspace::from_texts(&[("crates/core/src/fx_l9.rs", src)]);
    let findings = ws.check(&[Rule::AllowHygiene]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 1);
    assert!(findings[0].note.contains("bare `allow(L2)`"), "{findings:#?}");
}

#[test]
fn changed_file_filter_agrees_with_full_pass() {
    // `simlint --changed` filters the report after a full-workspace
    // analysis; the incremental view of one file must therefore equal the
    // full pass restricted to that file — including findings whose cause
    // lives in another file (L7's cross-file lock-order evidence).
    let ws = fixture_workspace(&[
        ("l6_reach.rs", "crates/core/src/fx_l6.rs"),
        ("l7_lock.rs", "crates/core/src/fx_l7.rs"),
        ("l8_time.rs", "crates/core/src/fx_l8.rs"),
    ]);
    let sem = [Rule::PanicReachability, Rule::LockDiscipline, Rule::TimeDomain];
    let full = ws.check(&sem);
    assert_eq!(full.len(), 7, "{full:#?}");
    for (fixture, rel) in [
        ("l6_reach.rs", "crates/core/src/fx_l6.rs"),
        ("l7_lock.rs", "crates/core/src/fx_l7.rs"),
        ("l8_time.rs", "crates/core/src/fx_l8.rs"),
    ] {
        let restricted: Vec<&Finding> = full.iter().filter(|f| f.file == rel).collect();
        let solo_ws = fixture_workspace(&[(fixture, rel)]);
        let solo = solo_ws.check(&sem);
        assert_eq!(
            restricted,
            solo.iter().collect::<Vec<_>>(),
            "changed-file view of {rel} diverges from its full-pass findings"
        );
        assert!(!restricted.is_empty(), "no findings for {rel}");
    }
}

#[test]
fn cfg_test_code_is_exempt_from_l2_and_l3() {
    let wrapped = format!(
        "#[cfg(test)]\nmod tests {{\n{}\n}}\n",
        fixture_text("l2_panic.rs")
    );
    let f = SourceFile::from_text(&wrapped, "crates/core/src/x.rs".into(), "core".into(), false);
    assert!(run_rule(rules::l2_no_panic, &f).is_empty());
}

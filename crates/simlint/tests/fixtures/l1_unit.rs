// Fixture: every function here trips L1 (unit-safety) when placed in a
// simulation crate. Not compiled — read as text by tests/fixtures.rs.

pub fn scale_without_units(cap: Watt) -> f64 {
    cap.value() * 1.2
}

pub fn literal_on_the_left(v: Volt) -> f64 {
    0.9 + v.value()
}

pub fn compare_unit_ident(voltage: f64) -> bool {
    voltage < 0.54
}

pub fn compare_watts(total_watts: f64) -> bool {
    total_watts >= 120.0
}

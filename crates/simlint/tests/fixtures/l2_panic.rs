// Fixture: every function here trips L2 (no-panic) when placed in a
// library crate. Not compiled — read as text by tests/fixtures.rs.

pub fn bare_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn explicit_panic() {
    panic!("boom");
}

pub fn not_done() {
    todo!()
}

pub fn cant_happen() {
    unreachable!("but it did")
}

pub fn expect_without_message(x: Option<u32>, msg: &str) -> u32 {
    x.expect(msg)
}

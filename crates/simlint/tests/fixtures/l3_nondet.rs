// Fixture: every line of code here trips L3 (determinism) when placed in a
// simulation crate. Not compiled — read as text by tests/fixtures.rs.

pub fn wall_clock() -> Instant {
    Instant::now()
}

pub fn os_time() -> SystemTime {
    SystemTime::now()
}

pub fn entropy_rng() -> f64 {
    thread_rng().gen()
}

pub fn unordered_map() -> HashMap<u32, f64> {
    HashMap::new()
}

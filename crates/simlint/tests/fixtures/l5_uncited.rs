// Fixture: both items trip L5 (doc-coverage) when placed under
// crates/core/src/controller/. Not compiled — read as text by
// tests/fixtures.rs.

pub fn undocumented_entry_point() {}

/// Documented, but cites nothing from the source material.
pub struct UncitedController {
    gain: f64,
}

// Fixture: L6 (panic-reachability). `QuantumCtl::step` is a hot-loop root;
// the panic sites it reaches through the call graph must be flagged, while
// the ones behind `#[cfg(test)]` must not. Not compiled — read as text.

pub struct QuantumCtl {
    history: Vec<f64>,
}

impl QuantumCtl {
    pub fn step(&mut self, raw: Option<f64>) -> f64 {
        let v = decode(raw);
        self.history.push(v);
        latest(&self.history)
    }
}

fn decode(raw: Option<f64>) -> f64 {
    raw.unwrap()
}

fn latest(h: &[f64]) -> f64 {
    h[0]
}

fn unreached_helper(x: Option<u32>) -> u32 {
    // Never called from the hot loop: still a panic site, but L6 only
    // reports what the roots reach.
    x.expect("boom")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v[0], 1);
        None::<u32>.unwrap_or(0);
        super::unreached_helper(Some(3));
    }
}

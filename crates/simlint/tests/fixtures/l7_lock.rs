// Fixture: L7 (lock-discipline). One channel op under a live guard, one
// inconsistent lock-order pair; the disciplined fns below stay clean.
// Not compiled — read as text.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Pool {
    queue: Mutex<Vec<u32>>,
    merge: Mutex<Vec<u32>>,
    tx: Sender<u32>,
}

impl Pool {
    pub fn send_while_locked(&self) {
        let guard = self.queue.lock();
        self.tx.send(7);
        drop(guard);
    }

    pub fn queue_then_merge(&self) {
        let a = self.queue.lock();
        let b = self.merge.lock();
        drop(b);
        drop(a);
    }

    pub fn merge_then_queue(&self) {
        let b = self.merge.lock();
        let a = self.queue.lock();
        drop(a);
        drop(b);
    }

    pub fn disciplined(&self) {
        {
            let guard = self.queue.lock();
            drop(guard);
        }
        self.tx.send(9);
    }

    pub fn temporary_released_at_semicolon(&self) {
        self.queue.lock();
        self.tx.send(11);
    }
}

// Fixture: L8 (time-domain confusion). Wall-clock types and exact float
// comparison in simulation fns; the Profiler impl is quarantined and an
// integer comparison is fine. Not compiled — read as text.

use std::time::Instant;

pub fn leaks_wall_clock() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn exact_float_compare(power: f64) -> bool {
    power == 1.5
}

pub fn integer_compare_is_fine(quanta: u64) -> bool {
    quanta == 16
}

pub struct Profiler {
    started: u64,
}

impl Profiler {
    pub fn lap(&self) -> u64 {
        let now = Instant::now();
        now.elapsed().as_nanos() as u64 + self.started
    }
}

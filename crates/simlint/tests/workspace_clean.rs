//! The acceptance gate: the workspace itself must be clean under every rule
//! (fixtures under `tests/fixtures/` are excluded by path).

#[test]
fn workspace_is_clean_under_all_rules() {
    simlint::assert_workspace_clean(env!("CARGO_MANIFEST_DIR"));
}

#[test]
fn workspace_findings_are_deterministic() {
    let root = simlint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let a = simlint::check_workspace(&root).expect("scan");
    let b = simlint::check_workspace(&root).expect("scan");
    assert_eq!(a, b);
}

#[test]
fn lexer_round_trips_every_workspace_file() {
    // The lexer must be lossless on real input, not just unit-test
    // snippets: concatenating the token texts of every `.rs` file in the
    // workspace must reproduce the file byte-for-byte.
    let root = simlint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let ws = simlint::LoadedWorkspace::load(&root).expect("scan");
    assert!(!ws.graph.files.is_empty());
    for pf in &ws.graph.files {
        assert!(pf.tf.round_trips(), "lexer drops bytes in {}", pf.rel);
    }
}

//! The acceptance gate: the workspace itself must be clean under every rule
//! (fixtures under `tests/fixtures/` are excluded by path).

#[test]
fn workspace_is_clean_under_all_rules() {
    simlint::assert_workspace_clean(env!("CARGO_MANIFEST_DIR"));
}

#[test]
fn workspace_findings_are_deterministic() {
    let root = simlint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let a = simlint::check_workspace(&root).expect("scan");
    let b = simlint::check_workspace(&root).expect("scan");
    assert_eq!(a, b);
}

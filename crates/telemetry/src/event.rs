//! Typed trace events, one per level of the HCAPP control hierarchy.
//!
//! Every event is keyed by the [`SimTime`] of the control-quantum boundary
//! it was observed at. The coordinator emits the global events (retarget,
//! PID step, VR slew) before the per-domain events of the same quantum, and
//! per-domain events are merged in domain order — so a recorded stream is
//! totally ordered and bit-identical between the serial and parallel
//! executors.

use hcapp_sim_core::time::SimTime;
use hcapp_sim_core::units::{Volt, Watt};

/// One structured observation from a run.
///
/// Thresholds that a controller does not have (pass-through, adversarial)
/// are carried as `f64::NAN` and serialize to JSON `null`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The global power target (`P_SPEC`) was (re)programmed — once at run
    /// start for the initial target, then at every scheduled retarget.
    Retarget {
        /// Quantum boundary the new target takes effect at.
        t: SimTime,
        /// The new target.
        target: Watt,
    },
    /// One level-1 global control action: sensed power through the
    /// cube-root error (Eq. 1) and the feed-forward PID (Eq. 2).
    GlobalPidStep {
        /// Quantum boundary of the control action.
        t: SimTime,
        /// Peak-hold sensed package power the controller acted on.
        p_now: Watt,
        /// The target (`P_SPEC`) in force for this action.
        setpoint: Watt,
        /// Eq. 1's signed cube-root voltage error.
        v_err: f64,
        /// Proportional contribution in volts (boosted `kp` included).
        p_term: f64,
        /// Integral contribution in volts (after anti-windup clamping).
        i_term: f64,
        /// Derivative contribution in volts.
        d_term: f64,
        /// The resulting global VR setpoint.
        v_next: Volt,
    },
    /// The global VR's trajectory across one quantum: where it was told to
    /// go and where its slew-limited output actually started/ended.
    VrSlew {
        /// Quantum start.
        t: SimTime,
        /// The VR's current setpoint.
        setpoint: Volt,
        /// Output at the first tick of the quantum.
        start: Volt,
        /// Output at the last tick of the quantum.
        end: Volt,
    },
    /// One level-2 domain controller observation at a quantum boundary:
    /// how the domain derived its voltage from the delivered global rail.
    DomainScale {
        /// Quantum boundary.
        t: SimTime,
        /// Domain index in system order.
        domain: u32,
        /// Component kind name (`CPU`, `GPU`, …).
        kind: &'static str,
        /// The domain voltage after priority, scale and range clamping.
        v_domain: Volt,
        /// `v_domain / v_global_delivered` — the effective normalization.
        normalized_v: f64,
        /// The software priority register value.
        priority: f64,
    },
    /// A fault plan fired at this quantum boundary (`hcapp faults` runs).
    FaultInjected {
        /// Quantum boundary the fault is active at.
        t: SimTime,
        /// Injection point name (`sensor_noise`, `sensor_stuck`,
        /// `sensor_dropout`, `vr_droop`, `vr_slew_derate`, `link_delay`,
        /// `link_loss`, `ctl_stuck`, `ctl_silent`).
        point: &'static str,
        /// Domain index for per-domain points; `None` for package-global
        /// ones (serializes to JSON `null`).
        domain: Option<u32>,
        /// Point-specific magnitude (noise factor, droop volts, slew
        /// factor, delay ticks); NaN when the point has none.
        magnitude: f64,
    },
    /// A degraded-mode health state machine changed state.
    HealthTransition {
        /// Quantum boundary of the transition.
        t: SimTime,
        /// What is being watched: `sensor` (package power sensing) or
        /// `domain` (a domain's controller heartbeat).
        subject: &'static str,
        /// Domain index for `domain` subjects; `None` for the sensor.
        domain: Option<u32>,
        /// State left (`healthy`, `stale`, `faulted`).
        from: &'static str,
        /// State entered.
        to: &'static str,
    },
    /// The package-level emergency throttle engaged or released.
    EmergencyThrottle {
        /// Quantum boundary of the change.
        t: SimTime,
        /// True on engagement, false on release.
        engaged: bool,
        /// The power estimate (sensed or worst-case) that drove the
        /// decision.
        estimate: Watt,
        /// The target (`P_SPEC`) the estimate was judged against.
        target: Watt,
        /// The domain-ratio scale now in force (1.0 once fully released).
        scale: f64,
    },
    /// One level-3 local controller decision at a quantum boundary.
    LocalDecision {
        /// Quantum boundary.
        t: SimTime,
        /// Domain index in system order.
        domain: u32,
        /// Local controller name (`cpu-ipc-static`, …).
        controller: &'static str,
        /// Mean per-unit IPC fraction the decision was made from.
        mean_ipc: f64,
        /// Raise-ratio threshold (NaN when the controller has none).
        up_threshold: f64,
        /// Lower-ratio threshold (NaN when the controller has none).
        down_threshold: f64,
        /// Mean per-unit voltage ratio after the decision.
        mean_ratio: f64,
    },
}

/// The event kinds, in canonical order (used by the schema header and
/// the validators). The first five fire on every traced run; the last
/// three only when a fault plan and its degradation layer are active.
pub const EVENT_KINDS: &[&str] = &[
    "retarget",
    "global_pid",
    "vr_slew",
    "domain_scale",
    "local_decision",
    "fault_injected",
    "health_transition",
    "emergency_throttle",
];

impl TraceEvent {
    /// The simulated instant this event is keyed by.
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::Retarget { t, .. }
            | TraceEvent::GlobalPidStep { t, .. }
            | TraceEvent::VrSlew { t, .. }
            | TraceEvent::DomainScale { t, .. }
            | TraceEvent::LocalDecision { t, .. }
            | TraceEvent::FaultInjected { t, .. }
            | TraceEvent::HealthTransition { t, .. }
            | TraceEvent::EmergencyThrottle { t, .. } => *t,
        }
    }

    /// The schema kind tag (one of [`EVENT_KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Retarget { .. } => "retarget",
            TraceEvent::GlobalPidStep { .. } => "global_pid",
            TraceEvent::VrSlew { .. } => "vr_slew",
            TraceEvent::DomainScale { .. } => "domain_scale",
            TraceEvent::LocalDecision { .. } => "local_decision",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::HealthTransition { .. } => "health_transition",
            TraceEvent::EmergencyThrottle { .. } => "emergency_throttle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_canonical_list() {
        let events = [
            TraceEvent::Retarget {
                t: SimTime::from_micros(1),
                target: Watt::new(84.0),
            },
            TraceEvent::GlobalPidStep {
                t: SimTime::from_micros(2),
                p_now: Watt::new(80.0),
                setpoint: Watt::new(84.0),
                v_err: 1.6,
                p_term: 0.02,
                i_term: 0.01,
                d_term: 0.0,
                v_next: Volt::new(0.98),
            },
            TraceEvent::VrSlew {
                t: SimTime::from_micros(3),
                setpoint: Volt::new(0.98),
                start: Volt::new(0.95),
                end: Volt::new(0.96),
            },
            TraceEvent::DomainScale {
                t: SimTime::from_micros(4),
                domain: 1,
                kind: "GPU",
                v_domain: Volt::new(0.72),
                normalized_v: 0.75,
                priority: 1.0,
            },
            TraceEvent::LocalDecision {
                t: SimTime::from_micros(5),
                domain: 1,
                controller: "gpu-ipc-dynamic",
                mean_ipc: 0.5,
                up_threshold: 0.6,
                down_threshold: 0.3,
                mean_ratio: 0.95,
            },
            TraceEvent::FaultInjected {
                t: SimTime::from_micros(6),
                point: "sensor_noise",
                domain: None,
                magnitude: 1.12,
            },
            TraceEvent::HealthTransition {
                t: SimTime::from_micros(7),
                subject: "domain",
                domain: Some(2),
                from: "healthy",
                to: "stale",
            },
            TraceEvent::EmergencyThrottle {
                t: SimTime::from_micros(8),
                engaged: true,
                estimate: Watt::new(112.0),
                target: Watt::new(84.0),
                scale: 0.7,
            },
        ];
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, EVENT_KINDS);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.time(), SimTime::from_micros(i as u64 + 1));
        }
    }
}

//! Hand-rolled JSON: a tiny writer and a tiny recursive-descent parser.
//!
//! The workspace is hermetic (simlint L4 forbids registry dependencies), so
//! there is no serde here — the exporter emits JSON by hand and the
//! validator re-parses it with the reader below. The subset is full JSON
//! minus nothing: objects, arrays, strings (with escapes), numbers, bools
//! and null all round-trip. Objects preserve key order in a `Vec` (a
//! `HashMap` would violate simlint L3's determinism rule anyway).

use std::fmt::Write as _;

/// A parsed JSON value. Object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as ordered `(key, value)` pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// A JSON parse error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for JsonError {}

// ---- writer ----

/// Append `v` as a JSON number; non-finite values become `null` (JSON has
/// no NaN/Infinity, and the schema documents null as "not applicable").
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builder for a single-line JSON object (the unit of a JSONL stream).
#[derive(Debug)]
pub struct Obj {
    out: String,
    first: bool,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Obj {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_str(&mut self.out, k);
        self.out.push(':');
    }

    /// Add a float member (non-finite → `null`).
    pub fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.out, v);
        self
    }

    /// Add an unsigned integer member.
    pub fn int(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.out, "{v}");
        self
    }

    /// Add a string member.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        push_str(&mut self.out, v);
        self
    }

    /// Add a pre-serialized JSON fragment (caller guarantees validity).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Close the object and return the line.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for Obj {
    fn default() -> Self {
        Self::new()
    }
}

// ---- parser ----

/// Maximum nesting depth accepted (the trace schema is depth ≤ 3; the cap
/// only guards the recursive parser against pathological input).
const MAX_DEPTH: u32 = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: u32) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<JsonValue, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<JsonValue, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            if end > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..end])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            let Some(c) = hex else {
                                return Err(self.err("invalid \\u escape"));
                            };
                            out.push(c);
                            self.pos = end;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let Ok(s) = std::str::from_utf8(&self.bytes[start..end]) else {
                        return Err(self.err("invalid UTF-8 in string"));
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("invalid number"));
        };
        match text.parse::<f64>() {
            Ok(n) => Ok(JsonValue::Num(n)),
            Err(_) => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_nulls() {
        let line = Obj::new()
            .str("name", "a\"b\\c\nd")
            .num("x", 1.5)
            .num("bad", f64::NAN)
            .int("n", 42)
            .finish();
        assert_eq!(line, r#"{"name":"a\"b\\c\nd","x":1.5,"bad":null,"n":42}"#);
    }

    #[test]
    fn roundtrip_through_parser() {
        let line = Obj::new()
            .str("kind", "global_pid")
            .num("v", 0.95)
            .raw("arr", "[1,2,3]")
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("global_pid"));
        assert_eq!(v.get("v").and_then(|k| k.as_f64()), Some(0.95));
        assert_eq!(
            v.get("arr"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0),
                JsonValue::Num(3.0)
            ]))
        );
    }

    #[test]
    fn parses_nested_and_literals() {
        let v = parse(r#"{"a":{"b":[true,false,null]},"c":-1.5e3}"#).unwrap();
        let inner = v.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(
            inner,
            &JsonValue::Arr(vec![
                JsonValue::Bool(true),
                JsonValue::Bool(false),
                JsonValue::Null
            ])
        );
        assert_eq!(v.get("c").and_then(|c| c.as_f64()), Some(-1500.0));
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        let e = parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte"));
    }

    #[test]
    fn unicode_roundtrip() {
        let mut s = String::new();
        push_str(&mut s, "héllo → wörld");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
        let v = parse(r#""é→""#).unwrap();
        assert_eq!(v.as_str(), Some("é→"));
    }

    #[test]
    fn deep_nesting_rejected() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}

//! The self-describing JSONL trace format and its validator.
//!
//! A trace file is one JSON object per line. The **first line is a schema
//! header** naming the format ([`SCHEMA`]), its version ([`VERSION`]), the
//! time unit, and the canonical event kinds; every following line is one
//! event with a `t_ns` key (simulated nanoseconds) and a `kind` tag. Events
//! are non-decreasing in `t_ns` — the coordinator emits global events before
//! per-domain events within a quantum and merges domain events in domain
//! order, so the same run traced serially and in parallel produces the same
//! bytes.
//!
//! Example:
//!
//! ```text
//! {"schema":"hcapp.trace","version":1,"t_unit":"ns","kinds":["retarget",...]}
//! {"t_ns":0,"kind":"retarget","target_w":84}
//! {"t_ns":0,"kind":"global_pid","p_now_w":0,"setpoint_w":84,...}
//! ```

use crate::event::{TraceEvent, EVENT_KINDS};
use crate::json::{self, JsonValue, Obj};

/// Schema identifier carried in the header line.
pub const SCHEMA: &str = "hcapp.trace";

/// Current schema version.
pub const VERSION: u64 = 1;

/// Build the header line. `extra` adds run metadata (scheme, combo, seed…)
/// as string members after the fixed schema fields.
pub fn header(extra: &[(&str, &str)]) -> String {
    let mut kinds = String::from("[");
    for (i, k) in EVENT_KINDS.iter().enumerate() {
        if i > 0 {
            kinds.push(',');
        }
        json::push_str(&mut kinds, k);
    }
    kinds.push(']');
    let mut o = Obj::new()
        .str("schema", SCHEMA)
        .int("version", VERSION)
        .str("t_unit", "ns")
        .raw("kinds", &kinds);
    for (k, v) in extra {
        o = o.str(k, v);
    }
    o.finish()
}

/// Serialize one event as a JSONL line (no trailing newline).
pub fn event_line(e: &TraceEvent) -> String {
    let base = Obj::new().int("t_ns", e.time().as_nanos()).str("kind", e.kind());
    match e {
        TraceEvent::Retarget { target, .. } => base.num("target_w", target.value()).finish(),
        TraceEvent::GlobalPidStep {
            p_now,
            setpoint,
            v_err,
            p_term,
            i_term,
            d_term,
            v_next,
            ..
        } => base
            .num("p_now_w", p_now.value())
            .num("setpoint_w", setpoint.value())
            .num("v_err", *v_err)
            .num("p_term_v", *p_term)
            .num("i_term_v", *i_term)
            .num("d_term_v", *d_term)
            .num("v_next_v", v_next.value())
            .finish(),
        TraceEvent::VrSlew {
            setpoint,
            start,
            end,
            ..
        } => base
            .num("setpoint_v", setpoint.value())
            .num("start_v", start.value())
            .num("end_v", end.value())
            .finish(),
        TraceEvent::DomainScale {
            domain,
            kind,
            v_domain,
            normalized_v,
            priority,
            ..
        } => base
            .int("domain", u64::from(*domain))
            .str("component", kind)
            .num("v_domain_v", v_domain.value())
            .num("normalized_v", *normalized_v)
            .num("priority", *priority)
            .finish(),
        TraceEvent::LocalDecision {
            domain,
            controller,
            mean_ipc,
            up_threshold,
            down_threshold,
            mean_ratio,
            ..
        } => base
            .int("domain", u64::from(*domain))
            .str("controller", controller)
            .num("mean_ipc", *mean_ipc)
            .num("up_threshold", *up_threshold)
            .num("down_threshold", *down_threshold)
            .num("mean_ratio", *mean_ratio)
            .finish(),
        TraceEvent::FaultInjected {
            point,
            domain,
            magnitude,
            ..
        } => base
            .str("point", point)
            // A global fault has no domain; NaN serializes to null.
            .num("domain", domain.map_or(f64::NAN, f64::from))
            .num("magnitude", *magnitude)
            .finish(),
        TraceEvent::HealthTransition {
            subject,
            domain,
            from,
            to,
            ..
        } => base
            .str("subject", subject)
            .num("domain", domain.map_or(f64::NAN, f64::from))
            .str("from", from)
            .str("to", to)
            .finish(),
        TraceEvent::EmergencyThrottle {
            engaged,
            estimate,
            target,
            scale,
            ..
        } => base
            .raw("engaged", if *engaged { "true" } else { "false" })
            .num("estimate_w", estimate.value())
            .num("target_w", target.value())
            .num("scale", *scale)
            .finish(),
    }
}

/// Serialize a full trace: header line plus one line per event, each
/// `\n`-terminated.
pub fn export<'a, I>(events: I, extra: &[(&str, &str)]) -> String
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut out = header(extra);
    out.push('\n');
    for e in events {
        out.push_str(&event_line(e));
        out.push('\n');
    }
    out
}

/// What [`validate`] learned about a well-formed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Schema version from the header.
    pub version: u64,
    /// Number of event lines (header excluded).
    pub events: u64,
    /// Per-kind event counts, indexed like [`EVENT_KINDS`].
    pub kind_counts: [u64; EVENT_KINDS.len()],
    /// Final (largest) `t_ns` seen, if any events were present.
    pub last_t_ns: Option<u64>,
}

impl ValidationReport {
    /// Count for one of the canonical kinds.
    pub fn count(&self, kind: &str) -> u64 {
        EVENT_KINDS
            .iter()
            .position(|k| *k == kind)
            .map_or(0, |i| self.kind_counts[i])
    }
}

/// Check a JSONL trace end to end: the header names [`SCHEMA`]/[`VERSION`],
/// every line parses as a JSON object, every event carries a known `kind`
/// and a numeric `t_ns`, timestamps never decrease, and no event that the
/// coordinator emits at most once per quantum appears twice at one `t_ns`.
///
/// The duplicate check covers the kinds with a uniqueness invariant:
/// `retarget`, `global_pid` and `vr_slew` are package-global (keyed by
/// `t_ns` alone), `domain_scale` and `local_decision` are per-domain
/// (keyed by `t_ns` + `domain`). `fault_injected`, `health_transition` and
/// `emergency_throttle` are exempt — several faults or transitions can
/// legitimately land on the same quantum boundary. A duplicate means a
/// corrupted or hand-spliced trace (e.g. two runs concatenated), which
/// would silently double-count in downstream analytics.
pub fn validate(text: &str) -> Result<ValidationReport, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, first)) = lines.next() else {
        return Err("empty trace: missing schema header".into());
    };
    let head = json::parse(first).map_err(|e| format!("header: {e}"))?;
    match head.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("unknown schema {s:?} (expected {SCHEMA:?})")),
        None => return Err("header missing \"schema\"".into()),
    }
    let version = match head.get("version").and_then(JsonValue::as_f64) {
        Some(v) if v == VERSION as f64 => VERSION,
        Some(v) => return Err(format!("unsupported schema version {v}")),
        None => return Err("header missing \"version\"".into()),
    };

    let mut report = ValidationReport {
        version,
        events: 0,
        kind_counts: [0; EVENT_KINDS.len()],
        last_t_ns: None,
    };
    // `(kind index, domain)` keys already seen at the current `t_ns`,
    // cleared whenever time advances.
    let mut seen_at_t: Vec<(usize, Option<u64>)> = Vec::new();
    for (lineno, line) in lines {
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
        let Some(ki) = EVENT_KINDS.iter().position(|k| *k == kind) else {
            return Err(format!("line {}: unknown kind {kind:?}", lineno + 1));
        };
        let t = v
            .get("t_ns")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("line {}: missing numeric \"t_ns\"", lineno + 1))?;
        if !(t.is_finite() && t >= 0.0) {
            return Err(format!("line {}: invalid t_ns {t}", lineno + 1));
        }
        let t = t as u64;
        if let Some(prev) = report.last_t_ns {
            if t < prev {
                return Err(format!(
                    "line {}: t_ns {t} goes backwards (previous {prev})",
                    lineno + 1
                ));
            }
            if t > prev {
                seen_at_t.clear();
            }
        }
        // Uniqueness keys for the current quantum boundary; the O(1)-ish
        // scan is over at most one quantum's worth of events.
        let unique_key = match kind {
            "retarget" | "global_pid" | "vr_slew" => Some((ki, None)),
            "domain_scale" | "local_decision" => v
                .get("domain")
                .and_then(JsonValue::as_f64)
                .map(|d| (ki, Some(d as u64))),
            _ => None,
        };
        if let Some(key) = unique_key {
            if seen_at_t.contains(&key) {
                let dom = key
                    .1
                    .map_or(String::new(), |d| format!(" for domain {d}"));
                return Err(format!(
                    "line {}: duplicate {kind} event at t_ns {t}{dom}",
                    lineno + 1
                ));
            }
            seen_at_t.push(key);
        }
        report.last_t_ns = Some(t);
        report.kind_counts[ki] += 1;
        report.events += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::time::SimTime;
    use hcapp_sim_core::units::{Volt, Watt};

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Retarget {
                t: SimTime::ZERO,
                target: Watt::new(84.0),
            },
            TraceEvent::GlobalPidStep {
                t: SimTime::ZERO,
                p_now: Watt::new(0.0),
                setpoint: Watt::new(84.0),
                v_err: 4.38,
                p_term: 0.05,
                i_term: 0.0,
                d_term: 0.0,
                v_next: Volt::new(1.0),
            },
            TraceEvent::VrSlew {
                t: SimTime::ZERO,
                setpoint: Volt::new(1.0),
                start: Volt::new(0.95),
                end: Volt::new(0.96),
            },
            TraceEvent::DomainScale {
                t: SimTime::from_micros(100),
                domain: 0,
                kind: "CPU",
                v_domain: Volt::new(0.96),
                normalized_v: 1.0,
                priority: 1.0,
            },
            TraceEvent::LocalDecision {
                t: SimTime::from_micros(100),
                domain: 0,
                controller: "cpu-ipc-static",
                mean_ipc: 0.4,
                up_threshold: 0.6,
                down_threshold: 0.3,
                mean_ratio: 0.9,
            },
            TraceEvent::FaultInjected {
                t: SimTime::from_micros(101),
                point: "link_delay",
                domain: Some(1),
                magnitude: 3.0,
            },
            TraceEvent::HealthTransition {
                t: SimTime::from_micros(102),
                subject: "sensor",
                domain: None,
                from: "stale",
                to: "faulted",
            },
            TraceEvent::EmergencyThrottle {
                t: SimTime::from_micros(103),
                engaged: true,
                estimate: Watt::new(118.0),
                target: Watt::new(84.0),
                scale: 0.7,
            },
        ]
    }

    #[test]
    fn export_validates_with_all_kinds() {
        let events = sample_events();
        let text = export(events.iter(), &[("scheme", "hcapp"), ("combo", "Hi-Hi")]);
        let report = validate(&text).unwrap();
        assert_eq!(report.version, VERSION);
        assert_eq!(report.events, 8);
        for k in EVENT_KINDS {
            assert_eq!(report.count(k), 1, "kind {k}");
        }
        assert_eq!(report.last_t_ns, Some(103_000));
        // Header carries run metadata.
        let head = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(head.get("scheme").and_then(JsonValue::as_str), Some("hcapp"));
    }

    #[test]
    fn nan_thresholds_serialize_as_null() {
        let e = TraceEvent::LocalDecision {
            t: SimTime::ZERO,
            domain: 2,
            controller: "pass-through",
            mean_ipc: 1.0,
            up_threshold: f64::NAN,
            down_threshold: f64::NAN,
            mean_ratio: 1.0,
        };
        let line = event_line(&e);
        assert!(line.contains("\"up_threshold\":null"));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("down_threshold"), Some(&JsonValue::Null));
    }

    #[test]
    fn fault_events_serialize_domains_and_flags() {
        let global = TraceEvent::FaultInjected {
            t: SimTime::ZERO,
            point: "sensor_dropout",
            domain: None,
            magnitude: f64::NAN,
        };
        let line = event_line(&global);
        assert!(line.contains("\"domain\":null"), "{line}");
        assert!(line.contains("\"magnitude\":null"), "{line}");

        let throttle = TraceEvent::EmergencyThrottle {
            t: SimTime::ZERO,
            engaged: false,
            estimate: Watt::new(70.0),
            target: Watt::new(84.0),
            scale: 1.0,
        };
        let line = event_line(&throttle);
        assert!(line.contains("\"engaged\":false"), "{line}");
        // The line is still parseable JSON.
        assert!(json::parse(&line).is_ok());
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        assert!(validate("").is_err());
        assert!(validate("{\"schema\":\"other\",\"version\":1}\n").is_err());
        assert!(validate("{\"schema\":\"hcapp.trace\",\"version\":9}\n").is_err());
        assert!(validate("{\"schema\":\"hcapp.trace\"}\n").is_err());

        let good_head = header(&[]);
        // Unparsable event line.
        assert!(validate(&format!("{good_head}\n{{oops\n")).is_err());
        // Unknown kind.
        assert!(validate(&format!(
            "{good_head}\n{{\"t_ns\":0,\"kind\":\"mystery\"}}\n"
        ))
        .is_err());
        // Missing t_ns.
        assert!(validate(&format!("{good_head}\n{{\"kind\":\"retarget\"}}\n")).is_err());
        // Time going backwards.
        let out_of_order = format!(
            "{good_head}\n{{\"t_ns\":100,\"kind\":\"retarget\",\"target_w\":84}}\n{{\"t_ns\":50,\"kind\":\"retarget\",\"target_w\":84}}\n"
        );
        let err = validate(&out_of_order).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn validate_rejects_duplicate_global_events_at_one_quantum() {
        // Corruption: the same global_pid line spliced in twice — e.g. two
        // trace fragments concatenated without deduplication.
        let head = header(&[]);
        let pid = "{\"t_ns\":1000,\"kind\":\"global_pid\",\"p_now_w\":80,\"setpoint_w\":84,\"v_err\":0,\"p_term_v\":0,\"i_term_v\":0,\"d_term_v\":0,\"v_next_v\":1}";
        let err = validate(&format!("{head}\n{pid}\n{pid}\n")).unwrap_err();
        assert!(err.contains("duplicate global_pid"), "{err}");
        assert!(err.contains("t_ns 1000"), "{err}");
        // The same event at a *different* quantum is fine.
        let pid2 = pid.replace("\"t_ns\":1000", "\"t_ns\":2000");
        assert!(validate(&format!("{head}\n{pid}\n{pid2}\n")).is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_per_domain_events_at_one_quantum() {
        let head = header(&[]);
        let d0 = "{\"t_ns\":0,\"kind\":\"domain_scale\",\"domain\":0,\"component\":\"CPU\",\"v_domain_v\":0.9,\"normalized_v\":1,\"priority\":1}";
        let d1 = d0.replace("\"domain\":0", "\"domain\":1");
        // Different domains at one quantum: legitimate.
        assert!(validate(&format!("{head}\n{d0}\n{d1}\n")).is_ok());
        // The same domain twice: corruption.
        let err = validate(&format!("{head}\n{d0}\n{d1}\n{d0}\n")).unwrap_err();
        assert!(err.contains("duplicate domain_scale"), "{err}");
        assert!(err.contains("domain 0"), "{err}");
    }

    #[test]
    fn repeatable_kinds_are_exempt_from_the_duplicate_check() {
        // Two identical fault injections at one boundary can be real (e.g.
        // a plan firing the same point twice); the validator must not
        // reject them.
        let head = header(&[]);
        let fault =
            "{\"t_ns\":500,\"kind\":\"fault_injected\",\"point\":\"sensor_noise\",\"domain\":null,\"magnitude\":1.1}";
        assert!(validate(&format!("{head}\n{fault}\n{fault}\n")).is_ok());
    }

    #[test]
    fn empty_event_stream_is_valid() {
        let text = export(std::iter::empty(), &[]);
        let report = validate(&text).unwrap();
        assert_eq!(report.events, 0);
        assert_eq!(report.last_t_ns, None);
    }
}

//! Structured telemetry for the HCAPP controller hierarchy.
//!
//! The paper's argument lives *inside* the control quantum — Eq. 1's
//! cube-root error signal, the PID's term-by-term actuation (Eq. 2), the
//! VR's slew toward its setpoint, each domain's normalized voltage and
//! priority scaling (§3.2), and each local controller's IPC-threshold
//! decisions (§3.3). This crate makes those observable without giving up
//! the workspace's two core properties:
//!
//! * **Determinism** (simlint L3): events are keyed by [`SimTime`] and
//!   emitted in a canonical order (global events before per-domain events
//!   within a quantum, domains in system order), so serial and parallel
//!   runs produce bit-identical traces. Wall-clock readings exist only in
//!   the isolated [`profile`] module and never touch an event.
//! * **Hermeticity** (simlint L4): the JSONL exporter and validator are
//!   hand-rolled in [`json`]/[`jsonl`] — no serde, no registry deps.
//!
//! The pieces:
//!
//! * [`TraceEvent`] — the five typed event kinds, one per hierarchy level.
//! * [`Tracer`] — the sink trait; [`NullTracer`] keeps the default path
//!   zero-cost, [`RingTracer`] collects a bounded window with a
//!   dropped-events counter and exact aggregate [`TraceStats`].
//! * [`jsonl`] — the versioned self-describing JSONL schema, exporter and
//!   validator.
//! * [`Profiler`]/[`ProfSpan`] — wall-clock per-phase timings for the
//!   serial and worker-pool executors.
//!
//! [`SimTime`]: hcapp_sim_core::time::SimTime

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod event;
pub mod json;
pub mod jsonl;
pub mod profile;
pub mod stats;
pub mod tracer;

pub use event::{TraceEvent, EVENT_KINDS};
pub use json::JsonValue;
pub use profile::{PhaseStat, ProfSpan, Profiler};
pub use stats::TraceStats;
pub use tracer::{shared, NullTracer, RingTracer, SharedTracer, Tracer};

//! Wall-clock run profiling, kept strictly off the simulated-time path.
//!
//! Everything else in this workspace is deterministic by construction
//! (simlint L3 forbids `Instant::now` in library crates precisely so that
//! serial and parallel runs are bit-identical). Profiling is the one
//! legitimate consumer of wall-clock time: it measures how long the *host*
//! spends in each phase of the run loop, and its readings feed only the
//! human-facing report — never a simulated quantity, an event timestamp or
//! a control decision. The allow-file directive below scopes that exemption
//! to this module alone.
//
// simlint: allow-file(L3): profiling measures host wall time by definition

use std::sync::Mutex;
use std::time::{Duration, Instant};

use hcapp_sim_core::report::Table;

/// Accumulated wall-clock cost of one named phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStat {
    /// How many spans were recorded for this phase.
    pub calls: u64,
    /// Total wall-clock time across all spans.
    pub total: Duration,
    /// Longest single span.
    pub max: Duration,
}

/// A thread-safe collector of per-phase wall-clock timings.
///
/// Phases are keyed by `&'static str` and kept in first-seen order (a
/// `Vec`, not a hash map — the report order is then stable run to run even
/// though the timings are not).
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Mutex<Vec<(&'static str, PhaseStat)>>,
}

impl Profiler {
    /// A profiler with no recorded phases.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Open a span for `phase`; the elapsed time is recorded when the
    /// returned guard drops.
    pub fn span(&self, phase: &'static str) -> ProfSpan<'_> {
        ProfSpan {
            profiler: self,
            phase,
            start: Instant::now(),
        }
    }

    fn add(&self, phase: &'static str, elapsed: Duration) {
        let mut phases = self
            .phases
            .lock()
            .expect("invariant: profiler mutex never poisoned");
        let idx = match phases.iter().position(|(name, _)| *name == phase) {
            Some(i) => i,
            None => {
                phases.push((phase, PhaseStat::default()));
                phases.len() - 1
            }
        };
        let stat = &mut phases[idx].1;
        stat.calls += 1;
        stat.total += elapsed;
        stat.max = stat.max.max(elapsed);
    }

    /// Snapshot of all phases in first-seen order.
    pub fn phases(&self) -> Vec<(&'static str, PhaseStat)> {
        self.phases
            .lock()
            // simlint: allow(L6): reporting path only; poisoning is unrecoverable and the graph edge here is a load_state name collision
            .expect("invariant: profiler mutex never poisoned")
            .clone()
    }

    /// Render the timings as a human-readable table.
    pub fn report(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["phase", "calls", "total (ms)", "mean (µs)", "max (µs)"]);
        for (name, stat) in self.phases() {
            let mean_us = if stat.calls == 0 {
                0.0
            } else {
                stat.total.as_secs_f64() * 1e6 / stat.calls as f64
            };
            t.add_row(vec![
                name.to_string(),
                stat.calls.to_string(),
                format!("{:.2}", stat.total.as_secs_f64() * 1e3),
                format!("{mean_us:.1}"),
                format!("{:.1}", stat.max.as_secs_f64() * 1e6),
            ]);
        }
        t
    }
}

/// RAII guard returned by [`Profiler::span`]; records the elapsed
/// wall-clock time into its phase when dropped.
#[derive(Debug)]
pub struct ProfSpan<'a> {
    profiler: &'a Profiler,
    phase: &'static str,
    start: Instant,
}

impl Drop for ProfSpan<'_> {
    fn drop(&mut self) {
        self.profiler.add(self.phase, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_per_phase() {
        let p = Profiler::new();
        {
            let _a = p.span("control");
        }
        {
            let _b = p.span("domains");
        }
        {
            let _c = p.span("control");
        }
        let phases = p.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "control");
        assert_eq!(phases[0].1.calls, 2);
        assert_eq!(phases[1].0, "domains");
        assert_eq!(phases[1].1.calls, 1);
    }

    #[test]
    fn report_renders_all_phases() {
        let p = Profiler::new();
        drop(p.span("vr-schedule"));
        let rendered = p.report("run profile").render();
        assert!(rendered.contains("vr-schedule"));
        assert!(rendered.contains("calls"));
    }

    #[test]
    fn spans_record_from_multiple_threads() {
        let p = Profiler::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        drop(p.span("worker"));
                    }
                });
            }
        });
        let phases = p.phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].1.calls, 32);
    }
}

//! Aggregate counters, gauges and histograms derived from the event stream.
//!
//! A bounded ring can drop old events, but the aggregates here observe every
//! event as it is recorded, so quantum counts, peaks and near-miss counters
//! stay exact even under saturation. The power histogram reuses
//! `hcapp-metrics`' [`PowerHistogram`] so trace summaries bin power the same
//! way the paper's Figure-6 analysis does.

use hcapp_metrics::PowerHistogram;
use hcapp_sim_core::units::Watt;

use crate::event::{TraceEvent, EVENT_KINDS};

/// Sensed-power histogram range (watts). The Table 3 systems target
/// ~60–100 W; the range is generous so overflow stays meaningful.
const HIST_LO_W: f64 = 0.0;
const HIST_HI_W: f64 = 250.0;
const HIST_BINS: usize = 50;

/// Aggregates over every event a tracer has observed.
#[derive(Debug, Clone)]
pub struct TraceStats {
    kind_counts: [u64; EVENT_KINDS.len()],
    near_misses: u64,
    peak: Watt,
    hist: PowerHistogram,
}

impl TraceStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        TraceStats {
            kind_counts: [0; EVENT_KINDS.len()],
            near_misses: 0,
            peak: Watt::ZERO,
            hist: PowerHistogram::new(HIST_LO_W, HIST_HI_W, HIST_BINS),
        }
    }

    /// Fold one event into the aggregates.
    pub fn observe(&mut self, event: &TraceEvent) {
        let kind = event.kind();
        if let Some(i) = EVENT_KINDS.iter().position(|k| *k == kind) {
            self.kind_counts[i] += 1;
        }
        if let TraceEvent::GlobalPidStep { p_now, setpoint, .. } = event {
            self.peak = self.peak.max(*p_now);
            self.hist.push(p_now.value());
            // A control step that *measured* power at or above the target is
            // a near-miss on the power-cap invariant: the cap held only
            // because the controller is about to pull voltage back down.
            if *p_now >= *setpoint {
                self.near_misses += 1;
            }
        }
    }

    /// How many events of `kind` (one of [`EVENT_KINDS`]) were observed.
    pub fn count(&self, kind: &str) -> u64 {
        EVENT_KINDS
            .iter()
            .position(|k| *k == kind)
            .map_or(0, |i| self.kind_counts[i])
    }

    /// Total events observed across all kinds.
    pub fn total(&self) -> u64 {
        self.kind_counts.iter().sum()
    }

    /// Control quanta observed (one `vr_slew` event is emitted per quantum).
    pub fn quanta(&self) -> u64 {
        self.count("vr_slew")
    }

    /// Control steps whose sensed power was at or above the setpoint.
    pub fn near_misses(&self) -> u64 {
        self.near_misses
    }

    /// Highest sensed package power seen by any global control step.
    pub fn peak_power(&self) -> Watt {
        self.peak
    }

    /// Distribution of sensed package power across global control steps.
    pub fn power_histogram(&self) -> &PowerHistogram {
        &self.hist
    }

    /// Sensed-power samples outside the histogram range, saturated into its
    /// edge buckets. Non-zero values mean the package spent control steps
    /// below 0 W (impossible — a modeling bug) or above the generous
    /// [`HIST_HI_W`] ceiling (a cap blow-through worth investigating, e.g.
    /// under an unmitigated fault plan).
    pub fn saturated_samples(&self) -> u64 {
        self.hist.underflow() + self.hist.overflow()
    }
}

impl Default for TraceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl hcapp_sim_core::state::Snapshot for TraceStats {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.u64_slice("stats.kinds", &self.kind_counts);
        w.u64("stats.near_misses", self.near_misses);
        w.f64("stats.peak", self.peak.0);
        self.hist.save_state(w);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        let kinds = r.u64_vec("stats.kinds")?;
        self.kind_counts = kinds.try_into().ok()?;
        self.near_misses = r.u64("stats.near_misses")?;
        self.peak = Watt(r.f64("stats.peak")?);
        self.hist.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::time::SimTime;
    use hcapp_sim_core::units::Volt;

    fn pid_step(us: u64, p_now: f64, setpoint: f64) -> TraceEvent {
        TraceEvent::GlobalPidStep {
            t: SimTime::from_micros(us),
            p_now: Watt::new(p_now),
            setpoint: Watt::new(setpoint),
            v_err: 0.0,
            p_term: 0.0,
            i_term: 0.0,
            d_term: 0.0,
            v_next: Volt::new(0.95),
        }
    }

    #[test]
    fn counts_and_gauges_accumulate() {
        let mut s = TraceStats::new();
        s.observe(&pid_step(0, 80.0, 84.0));
        s.observe(&pid_step(100, 90.0, 84.0));
        s.observe(&pid_step(200, 84.0, 84.0));
        s.observe(&TraceEvent::VrSlew {
            t: SimTime::from_micros(200),
            setpoint: Volt::new(0.95),
            start: Volt::new(0.95),
            end: Volt::new(0.95),
        });
        assert_eq!(s.count("global_pid"), 3);
        assert_eq!(s.quanta(), 1);
        assert_eq!(s.total(), 4);
        // 90 W and the exactly-at-target 84 W step are near-misses; 80 W is not.
        assert_eq!(s.near_misses(), 2);
        assert_eq!(s.peak_power(), Watt::new(90.0));
        assert_eq!(s.power_histogram().total(), 3);
    }

    #[test]
    fn unknown_kind_counts_zero() {
        let s = TraceStats::new();
        assert_eq!(s.count("no_such_kind"), 0);
    }

    #[test]
    fn out_of_range_power_saturates_into_edge_buckets() {
        let mut s = TraceStats::new();
        s.observe(&pid_step(0, 80.0, 84.0));
        s.observe(&pid_step(100, 400.0, 84.0)); // beyond HIST_HI_W
        assert_eq!(s.saturated_samples(), 1);
        // The sample is not silently dropped: it still shapes the
        // distribution (last bucket) and the count.
        let h = s.power_histogram();
        assert_eq!(h.total(), 2);
        assert!(h.fraction(h.bins() - 1) > 0.0);
    }
}

//! The tracer abstraction: a sink the run loop hands events to.
//!
//! The default path carries a [`NullTracer`], whose `enabled()` returns
//! `false` — the coordinator checks that flag once per run and never even
//! constructs events, so an untraced run does zero telemetry work per
//! quantum. [`RingTracer`] is the bounded collector the `hcapp trace` CLI
//! and the determinism tests attach.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::TraceEvent;
use crate::stats::TraceStats;

/// A sink for [`TraceEvent`]s.
///
/// `Send + Debug` are supertraits so a boxed tracer can ride inside the
/// run configuration, which is cloned and moved across the experiment
/// harness's worker threads.
pub trait Tracer: Send + std::fmt::Debug {
    /// Whether the producer should bother constructing events at all.
    /// The run loop reads this once per run, not per quantum.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one event.
    fn record(&mut self, event: TraceEvent);

    /// Drain a batch of events into the sink. The run loop buffers one
    /// quantum's events locally and calls this once, so a shared tracer is
    /// locked once per quantum rather than once per event.
    fn record_all(&mut self, events: &mut Vec<TraceEvent>) {
        for e in events.drain(..) {
            self.record(e);
        }
    }
}

/// The no-op tracer: `enabled()` is `false`, so producers skip event
/// construction entirely and `record` is never reached on the hot path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: TraceEvent) {}

    fn record_all(&mut self, events: &mut Vec<TraceEvent>) {
        events.clear();
    }
}

/// A bounded in-memory collector: keeps the newest `capacity` events,
/// dropping the oldest when full and counting the drops. Aggregate
/// statistics ([`TraceStats`]) observe *every* event, including dropped
/// ones, so counters stay exact under saturation.
#[derive(Debug, Clone)]
pub struct RingTracer {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
    stats: TraceStats,
}

impl RingTracer {
    /// Create a ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingTracer capacity must be nonzero");
        RingTracer {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            stats: TraceStats::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Aggregate statistics over every event ever recorded (dropped ones
    /// included).
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Take the buffered events out, oldest first, leaving the ring empty
    /// (stats and the dropped counter are preserved).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

/// Checkpointable half of the ring: drop/aggregate counters only.
///
/// Buffered events are deliberately *not* serialized — the resume driver
/// drains the ring into the durable trace sink immediately before every
/// checkpoint, so at a snapshot boundary the buffer is empty by
/// construction. `load_state` refuses a snapshot taken from a non-drained
/// ring (and a non-empty ring at load time), keeping the contract honest.
impl hcapp_sim_core::state::Snapshot for RingTracer {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.usize("ring.buffered", self.buf.len());
        w.u64("ring.dropped", self.dropped);
        self.stats.save_state(w);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        if r.usize("ring.buffered")? != 0 || !self.buf.is_empty() {
            return None;
        }
        self.dropped = r.u64("ring.dropped")?;
        self.stats.load_state(r)
    }
}

impl Tracer for RingTracer {
    fn record(&mut self, event: TraceEvent) {
        self.stats.observe(&event);
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// The shape of the hook carried by the run configuration: shared so the
/// caller keeps a handle to read the trace back after the run, mutex'd
/// because the worker-pool executor records from the coordinator thread
/// while the caller may hold clones.
pub type SharedTracer = Arc<Mutex<dyn Tracer>>;

/// Wrap a concrete tracer into the [`SharedTracer`] handle the run
/// configuration accepts.
pub fn shared<T: Tracer + 'static>(tracer: T) -> SharedTracer {
    Arc::new(Mutex::new(tracer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::time::SimTime;
    use hcapp_sim_core::units::Watt;

    fn ev(us: u64) -> TraceEvent {
        TraceEvent::Retarget {
            t: SimTime::from_micros(us),
            target: Watt::new(84.0),
        }
    }

    #[test]
    fn null_tracer_is_disabled_and_discards() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        let mut batch = vec![ev(1), ev(2)];
        t.record_all(&mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = RingTracer::new(3);
        for us in 0..5 {
            r.record(ev(us));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let times: Vec<u64> = r.events().map(|e| e.time().as_nanos()).collect();
        assert_eq!(times, [2_000, 3_000, 4_000]);
        // Stats saw all five events, not just the surviving three.
        assert_eq!(r.stats().count("retarget"), 5);
    }

    #[test]
    fn drain_empties_but_preserves_counters() {
        let mut r = RingTracer::new(2);
        r.record(ev(0));
        r.record(ev(1));
        r.record(ev(2));
        let out = r.drain();
        assert_eq!(out.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.stats().count("retarget"), 3);
    }

    #[test]
    fn record_all_drains_the_batch() {
        let mut r = RingTracer::new(8);
        let mut batch = vec![ev(0), ev(1), ev(2)];
        r.record_all(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn shared_handle_coerces_to_dyn() {
        let h: SharedTracer = shared(RingTracer::new(4));
        h.lock().expect("not poisoned").record(ev(7));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = RingTracer::new(0);
    }
}

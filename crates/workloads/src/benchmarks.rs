//! The eight named benchmarks and their calibrated specs.
//!
//! §4.2/§4.3 of the paper select PARSEC and Rodinia subsets "based on power
//! characteristics to provide a range of power behaviors"; Table 3 then
//! names the combos by those classes. The specs below are the synthetic
//! equivalents: each reproduces the *class* of behaviour the paper keys on
//! (see DESIGN.md's substitution table).
//!
//! Calibration notes (timescales matter more than exact levels):
//! * Burst durations (ferret ≈ 80–350 µs, bfs ≈ 50–400 µs) straddle the
//!   RAPL-like 100 µs control period: much longer than HCAPP's 1 µs loop,
//!   comparable to or shorter than RAPL-like's, far below the SW-like 10 ms
//!   loop. That ordering produces Figures 4 and 7.
//! * Oscillation periods (0.3–3 ms) are what the 1 ms/10 ms windows of
//!   Figure 2 progressively erase.

use crate::spec::{BenchmarkSpec, DurRange, PhasePattern};

/// The power-behaviour class the paper names combos by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerClass {
    /// Low, steady power (blackscholes, myocyte).
    Low,
    /// Medium, steady power (swaptions, sradv2).
    Mid,
    /// High power with slow oscillation (fluidanimate, backprop).
    Hi,
    /// Near-constant power (swaptions, labelled "Const" in Table 3).
    Const,
    /// Quiet baseline with short high-power bursts (ferret, bfs).
    Burst,
}

/// A named benchmark from the paper's suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    // -- PARSEC (CPU) --
    /// PARSEC blackscholes: Low class, compute-heavy option pricing at
    /// modest sustained activity.
    Blackscholes,
    /// PARSEC fluidanimate: Hi class, frame-loop oscillation at high
    /// activity.
    Fluidanimate,
    /// PARSEC swaptions: Mid/Const class, very steady Monte-Carlo kernel.
    Swaptions,
    /// PARSEC ferret: Burst class, similarity-search pipeline with long
    /// quiet spans and short hot stages.
    Ferret,
    // -- Rodinia (GPU) --
    /// Rodinia myocyte: Low class, tiny kernels with limited parallelism.
    Myocyte,
    /// Rodinia backprop: Hi class, layer-alternating training loop.
    Backprop,
    /// Rodinia sradv2: Mid class, iterative stencil with mild swings.
    Sradv2,
    /// Rodinia bfs: Burst class, frontier-dependent kernel bursts.
    Bfs,
    // -- Extended suite (beyond the paper's subset) --
    /// PARSEC streamcluster: memory-bound steady clustering kernel
    /// (extension; not part of the paper's Table 3 suite).
    Streamcluster,
    /// PARSEC canneal: cache-hostile simulated annealing with slow swings
    /// (extension).
    Canneal,
    /// Rodinia hotspot: dense stencil, high sustained occupancy
    /// (extension).
    Hotspot,
    /// Rodinia kmeans: alternating assign/update iterations (extension).
    Kmeans,
}

impl Benchmark {
    /// All CPU (PARSEC) benchmarks.
    pub const PARSEC: [Benchmark; 4] = [
        Benchmark::Blackscholes,
        Benchmark::Fluidanimate,
        Benchmark::Swaptions,
        Benchmark::Ferret,
    ];

    /// All GPU (Rodinia) benchmarks.
    pub const RODINIA: [Benchmark; 4] = [
        Benchmark::Backprop,
        Benchmark::Bfs,
        Benchmark::Myocyte,
        Benchmark::Sradv2,
    ];

    /// The extended suite: additional PARSEC/Rodinia workloads beyond the
    /// paper's subset, usable with custom combos and the CLI.
    pub const EXTENDED: [Benchmark; 4] = [
        Benchmark::Streamcluster,
        Benchmark::Canneal,
        Benchmark::Hotspot,
        Benchmark::Kmeans,
    ];

    /// Every benchmark, paper subset plus extensions.
    pub fn all() -> Vec<Benchmark> {
        let mut v = Vec::with_capacity(12);
        v.extend(Benchmark::PARSEC);
        v.extend(Benchmark::RODINIA);
        v.extend(Benchmark::EXTENDED);
        v
    }

    /// Look a benchmark up by its paper name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Benchmark::all()
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// The benchmark's name as printed in the paper.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// The power-behaviour class the combos are named by.
    pub fn class(self) -> PowerClass {
        match self {
            Benchmark::Blackscholes | Benchmark::Myocyte => PowerClass::Low,
            Benchmark::Fluidanimate | Benchmark::Backprop => PowerClass::Hi,
            Benchmark::Swaptions => PowerClass::Const,
            Benchmark::Sradv2 => PowerClass::Mid,
            Benchmark::Ferret | Benchmark::Bfs => PowerClass::Burst,
            Benchmark::Streamcluster | Benchmark::Canneal => PowerClass::Mid,
            Benchmark::Hotspot => PowerClass::Hi,
            Benchmark::Kmeans => PowerClass::Mid,
        }
    }

    /// True for PARSEC (CPU-side) benchmarks.
    pub fn is_cpu(self) -> bool {
        matches!(
            self,
            Benchmark::Blackscholes
                | Benchmark::Fluidanimate
                | Benchmark::Swaptions
                | Benchmark::Ferret
                | Benchmark::Streamcluster
                | Benchmark::Canneal
        )
    }

    /// The calibrated generator spec.
    pub fn spec(self) -> BenchmarkSpec {
        match self {
            Benchmark::Blackscholes => BenchmarkSpec {
                name: "blackscholes",
                pattern: PhasePattern::Steady {
                    activity: 0.40,
                    jitter: 0.05,
                    dur: DurRange::micros(200.0, 600.0),
                },
                mem_intensity: 0.15,
                mem_jitter: 0.05,
            },
            Benchmark::Fluidanimate => BenchmarkSpec {
                name: "fluidanimate",
                pattern: PhasePattern::Oscillating {
                    lo: 0.42,
                    hi: 0.98,
                    lo_dur: DurRange::micros(1_200.0, 3_000.0),
                    hi_dur: DurRange::micros(400.0, 1_200.0),
                },
                mem_intensity: 0.35,
                mem_jitter: 0.10,
            },
            Benchmark::Swaptions => BenchmarkSpec {
                name: "swaptions",
                pattern: PhasePattern::Steady {
                    activity: 0.62,
                    jitter: 0.03,
                    dur: DurRange::micros(300.0, 800.0),
                },
                mem_intensity: 0.10,
                mem_jitter: 0.03,
            },
            Benchmark::Ferret => BenchmarkSpec {
                name: "ferret",
                pattern: PhasePattern::Bursty {
                    base: 0.28,
                    burst: 0.95,
                    base_dur: DurRange::micros(500.0, 2_500.0),
                    burst_dur: DurRange::micros(80.0, 350.0),
                },
                mem_intensity: 0.30,
                mem_jitter: 0.10,
            },
            Benchmark::Myocyte => BenchmarkSpec {
                name: "myocyte",
                pattern: PhasePattern::Steady {
                    activity: 0.22,
                    jitter: 0.04,
                    dur: DurRange::micros(150.0, 500.0),
                },
                mem_intensity: 0.20,
                mem_jitter: 0.05,
            },
            Benchmark::Backprop => BenchmarkSpec {
                name: "backprop",
                pattern: PhasePattern::Oscillating {
                    lo: 0.42,
                    hi: 0.98,
                    lo_dur: DurRange::micros(500.0, 1_500.0),
                    hi_dur: DurRange::micros(200.0, 700.0),
                },
                mem_intensity: 0.45,
                mem_jitter: 0.10,
            },
            Benchmark::Sradv2 => BenchmarkSpec {
                name: "sradv2",
                pattern: PhasePattern::Oscillating {
                    lo: 0.45,
                    hi: 0.66,
                    lo_dur: DurRange::micros(500.0, 1_500.0),
                    hi_dur: DurRange::micros(500.0, 1_500.0),
                },
                mem_intensity: 0.35,
                mem_jitter: 0.08,
            },
            Benchmark::Bfs => BenchmarkSpec {
                name: "bfs",
                pattern: PhasePattern::Bursty {
                    base: 0.25,
                    burst: 0.90,
                    base_dur: DurRange::micros(200.0, 1_000.0),
                    burst_dur: DurRange::micros(50.0, 400.0),
                },
                mem_intensity: 0.55,
                mem_jitter: 0.10,
            },
            Benchmark::Streamcluster => BenchmarkSpec {
                name: "streamcluster",
                pattern: PhasePattern::Steady {
                    activity: 0.55,
                    jitter: 0.05,
                    dur: DurRange::micros(400.0, 1_200.0),
                },
                mem_intensity: 0.60,
                mem_jitter: 0.10,
            },
            Benchmark::Canneal => BenchmarkSpec {
                name: "canneal",
                pattern: PhasePattern::Oscillating {
                    lo: 0.35,
                    hi: 0.60,
                    lo_dur: DurRange::micros(1_000.0, 4_000.0),
                    hi_dur: DurRange::micros(800.0, 2_500.0),
                },
                mem_intensity: 0.70,
                mem_jitter: 0.10,
            },
            Benchmark::Hotspot => BenchmarkSpec {
                name: "hotspot",
                pattern: PhasePattern::Steady {
                    activity: 0.85,
                    jitter: 0.06,
                    dur: DurRange::micros(300.0, 900.0),
                },
                mem_intensity: 0.30,
                mem_jitter: 0.08,
            },
            Benchmark::Kmeans => BenchmarkSpec {
                name: "kmeans",
                pattern: PhasePattern::Oscillating {
                    lo: 0.40,
                    hi: 0.75,
                    lo_dur: DurRange::micros(400.0, 1_200.0),
                    hi_dur: DurRange::micros(300.0, 900.0),
                },
                mem_intensity: 0.50,
                mem_jitter: 0.10,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_partition_cleanly() {
        for b in Benchmark::PARSEC {
            assert!(b.is_cpu(), "{} should be CPU", b.name());
        }
        for b in Benchmark::RODINIA {
            assert!(!b.is_cpu(), "{} should be GPU", b.name());
        }
    }

    #[test]
    fn classes_match_table_3_naming() {
        assert_eq!(Benchmark::Blackscholes.class(), PowerClass::Low);
        assert_eq!(Benchmark::Fluidanimate.class(), PowerClass::Hi);
        assert_eq!(Benchmark::Swaptions.class(), PowerClass::Const);
        assert_eq!(Benchmark::Ferret.class(), PowerClass::Burst);
        assert_eq!(Benchmark::Myocyte.class(), PowerClass::Low);
        assert_eq!(Benchmark::Backprop.class(), PowerClass::Hi);
        assert_eq!(Benchmark::Sradv2.class(), PowerClass::Mid);
        assert_eq!(Benchmark::Bfs.class(), PowerClass::Burst);
    }

    #[test]
    fn class_ordering_of_activity() {
        // Low benchmarks sit below Mid/Const/Hi on *average* activity…
        let act = |b: Benchmark| b.spec().mean_activity();
        assert!(act(Benchmark::Blackscholes) < act(Benchmark::Swaptions));
        assert!(act(Benchmark::Blackscholes) < act(Benchmark::Fluidanimate));
        assert!(act(Benchmark::Myocyte) < act(Benchmark::Sradv2));
        assert!(act(Benchmark::Myocyte) < act(Benchmark::Backprop));
        // Bursty baselines are low on average.
        assert!(act(Benchmark::Ferret) < act(Benchmark::Swaptions));
        // …while the Hi class is defined by its *peaks*: its hot phases
        // exceed anything the steady classes reach (duty-cycled means can
        // land near the Mid class — that is Figure 1's peak/average gap).
        let peak = |b: Benchmark| match b.spec().pattern {
            PhasePattern::Oscillating { hi, .. } => hi,
            PhasePattern::Steady { activity, .. } => activity,
            PhasePattern::Bursty { burst, .. } => burst,
        };
        assert!(peak(Benchmark::Fluidanimate) > peak(Benchmark::Swaptions));
        assert!(peak(Benchmark::Backprop) > peak(Benchmark::Sradv2));
    }

    #[test]
    fn burst_durations_straddle_rapl_period() {
        // The separation between control schemes depends on burst durations
        // relative to control periods: every burst must exceed HCAPP's 1 µs
        // loop, and burst ranges must overlap the RAPL-like 100 µs period.
        for b in [Benchmark::Ferret, Benchmark::Bfs] {
            if let PhasePattern::Bursty { burst_dur, .. } = b.spec().pattern {
                assert!(burst_dur.lo > 1_000.0, "{}: burst shorter than 1us", b.name());
                assert!(
                    burst_dur.lo < 100_000.0 && burst_dur.hi > 100_000.0 / 2.0,
                    "{}: bursts do not straddle the RAPL-like period",
                    b.name()
                );
            } else {
                panic!("{} should be bursty", b.name());
            }
        }
    }

    #[test]
    fn names_are_paper_names() {
        assert_eq!(Benchmark::Blackscholes.name(), "blackscholes");
        assert_eq!(Benchmark::Bfs.name(), "bfs");
        assert_eq!(Benchmark::Sradv2.name(), "sradv2");
    }

    #[test]
    fn extended_suite_lookup_and_sides() {
        assert_eq!(Benchmark::all().len(), 12);
        assert_eq!(Benchmark::by_name("hotspot"), Some(Benchmark::Hotspot));
        assert_eq!(Benchmark::by_name("CANNEAL"), Some(Benchmark::Canneal));
        assert_eq!(Benchmark::by_name("nope"), None);
        assert!(Benchmark::Streamcluster.is_cpu());
        assert!(Benchmark::Canneal.is_cpu());
        assert!(!Benchmark::Hotspot.is_cpu());
        assert!(!Benchmark::Kmeans.is_cpu());
    }

    #[test]
    fn extended_specs_are_sane() {
        for b in Benchmark::EXTENDED {
            let spec = b.spec();
            let a = spec.mean_activity();
            assert!((0.1..=0.95).contains(&a), "{}: mean activity {a}", b.name());
            assert!((0.0..=1.0).contains(&spec.mem_intensity));
        }
    }
}

//! Table 3: the benchmark combinations.
//!
//! The heterogeneous test suite pairs one PARSEC benchmark (CPU) with one
//! Rodinia benchmark (GPU); the SHA accelerator always runs its modelled
//! stream. The first four combos cover the standard power corner cases
//! (Low/Hi × Low/Hi); the last four exercise bursty behaviour.
//!
//! Naming note: Table 3 lists "Burst-Const" (ferret + myocyte) but every
//! results figure labels that combo "Burst-Low" — myocyte *is* the Low
//! workload. We use the figures' labels so our output lines up with the
//! plots being reproduced.

use crate::benchmarks::Benchmark;

/// One row of Table 3: a (CPU, GPU) benchmark pair plus the modelled SHA
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Combo {
    /// Combo name as used in the results figures.
    pub name: &'static str,
    /// CPU-side (PARSEC) benchmark.
    pub cpu: Benchmark,
    /// GPU-side (Rodinia) benchmark.
    pub gpu: Benchmark,
}

impl Combo {
    /// Construct a custom combo (the standard suite is [`combo_suite`]).
    ///
    /// # Panics
    /// Panics if `cpu` is not a PARSEC benchmark or `gpu` not a Rodinia one.
    pub fn new(name: &'static str, cpu: Benchmark, gpu: Benchmark) -> Self {
        assert!(cpu.is_cpu(), "{} is not a CPU benchmark", cpu.name());
        assert!(!gpu.is_cpu(), "{} is not a GPU benchmark", gpu.name());
        Combo { name, cpu, gpu }
    }
}

/// The eight-combo heterogeneous test suite of Table 3, in the
/// (alphabetical) order the results figures use.
pub fn combo_suite() -> [Combo; 8] {
    [
        Combo::new("Burst-Burst", Benchmark::Ferret, Benchmark::Bfs),
        Combo::new("Burst-Low", Benchmark::Ferret, Benchmark::Myocyte),
        Combo::new("Const-Burst", Benchmark::Swaptions, Benchmark::Bfs),
        Combo::new("Hi-Hi", Benchmark::Fluidanimate, Benchmark::Backprop),
        Combo::new("Hi-Low", Benchmark::Fluidanimate, Benchmark::Myocyte),
        Combo::new("Low-Hi", Benchmark::Blackscholes, Benchmark::Backprop),
        Combo::new("Low-Low", Benchmark::Blackscholes, Benchmark::Myocyte),
        Combo::new("Mid-Mid", Benchmark::Swaptions, Benchmark::Sradv2),
    ]
}

/// Look a combo up by its figure label (case-insensitive).
pub fn combo_by_name(name: &str) -> Option<Combo> {
    combo_suite()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_unique_combos() {
        let suite = combo_suite();
        assert_eq!(suite.len(), 8);
        for i in 0..suite.len() {
            for j in (i + 1)..suite.len() {
                assert_ne!(suite[i].name, suite[j].name);
                assert!(suite[i] != suite[j]);
            }
        }
    }

    #[test]
    fn table_3_pairings() {
        let by = |n: &str| combo_by_name(n).unwrap();
        assert_eq!(by("Low-Low").cpu, Benchmark::Blackscholes);
        assert_eq!(by("Low-Low").gpu, Benchmark::Myocyte);
        assert_eq!(by("Low-Hi").gpu, Benchmark::Backprop);
        assert_eq!(by("Hi-Low").cpu, Benchmark::Fluidanimate);
        assert_eq!(by("Hi-Hi").gpu, Benchmark::Backprop);
        assert_eq!(by("Mid-Mid").cpu, Benchmark::Swaptions);
        assert_eq!(by("Mid-Mid").gpu, Benchmark::Sradv2);
        assert_eq!(by("Const-Burst").cpu, Benchmark::Swaptions);
        assert_eq!(by("Const-Burst").gpu, Benchmark::Bfs);
        assert_eq!(by("Burst-Low").cpu, Benchmark::Ferret);
        assert_eq!(by("Burst-Low").gpu, Benchmark::Myocyte);
        assert_eq!(by("Burst-Burst").cpu, Benchmark::Ferret);
        assert_eq!(by("Burst-Burst").gpu, Benchmark::Bfs);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(combo_by_name("hi-hi").is_some());
        assert!(combo_by_name("HI-LOW").is_some());
        assert!(combo_by_name("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "not a CPU benchmark")]
    fn wrong_side_panics() {
        let _ = Combo::new("bad", Benchmark::Bfs, Benchmark::Myocyte);
    }
}

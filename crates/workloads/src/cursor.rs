//! Deterministic phase streams.
//!
//! A [`PhaseCursor`] turns a [`BenchmarkSpec`] into an endless, reproducible
//! stream of phases (the paper loops short workloads so every component runs
//! for the whole test, §4). The component simulator pushes *completed work*
//! into the cursor each tick; the cursor crosses phase boundaries exactly,
//! carrying remainders, so phase timing is independent of tick size.

use hcapp_sim_core::rng::DeterministicRng;

use crate::phase::{Phase, PhaseSample};
use crate::spec::{BenchmarkSpec, PatternState};

/// An endless, deterministic stream of phases for one chiplet's workload.
///
/// ```
/// use hcapp_workloads::benchmarks::Benchmark;
/// use hcapp_workloads::cursor::PhaseCursor;
///
/// let mut cursor = PhaseCursor::new(Benchmark::Ferret.spec(), 42, 0);
/// // Consume 5 ms of nominal work; ferret's bursty pattern shows both its
/// // quiet baseline and its hot bursts along the way.
/// let mut activities = Vec::new();
/// for _ in 0..50 {
///     cursor.advance(100_000.0); // 100 µs of nominal progress
///     activities.push(cursor.sample().activity);
/// }
/// assert!(activities.iter().any(|&a| a < 0.4));
/// assert!(activities.iter().any(|&a| a > 0.8));
/// assert_eq!(cursor.work_done(), 5_000_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseCursor {
    spec: BenchmarkSpec,
    rng: DeterministicRng,
    state: PatternState,
    current: Phase,
    /// Work remaining in the current phase (nominal ns).
    remaining: f64,
    /// Total work consumed since construction (nominal ns) — the
    /// performance metric.
    consumed: f64,
    /// Number of phase transitions so far.
    phases_started: u64,
}

impl PhaseCursor {
    /// Create a cursor for `spec`, deriving randomness from `(seed,
    /// stream_id)` so distinct chiplets get decorrelated but reproducible
    /// streams.
    pub fn new(spec: BenchmarkSpec, seed: u64, stream_id: u64) -> Self {
        let mut rng = DeterministicRng::derive(seed, stream_id);
        let mut state = PatternState::default();
        let mut current = spec.next_phase(&mut rng, &mut state);
        // Start at a random offset inside the first phase so chiplets with
        // the same spec are phase-shifted rather than synchronized.
        let offset = rng.next_f64() * current.work_ns;
        current.work_ns -= offset;
        let remaining = current.work_ns;
        PhaseCursor {
            spec,
            rng,
            state,
            current,
            remaining,
            consumed: 0.0,
            phases_started: 1,
        }
    }

    /// The benchmark this cursor runs.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// The behaviour sample for the current instant.
    #[inline]
    pub fn sample(&self) -> PhaseSample {
        self.current.sample()
    }

    /// Advance by `work_ns` nominal nanoseconds of completed work, crossing
    /// phase boundaries as needed.
    pub fn advance(&mut self, work_ns: f64) {
        debug_assert!(work_ns >= 0.0, "negative work");
        self.consumed += work_ns;
        let mut left = work_ns;
        while left >= self.remaining {
            left -= self.remaining;
            self.current = self.spec.next_phase(&mut self.rng, &mut self.state);
            // Guard against zero-length phases to guarantee progress.
            self.remaining = self.current.work_ns.max(1.0);
            self.phases_started += 1;
        }
        self.remaining -= left;
    }

    /// Total work consumed (nominal ns) — proportional to instructions
    /// retired, the numerator of every speedup in the paper.
    #[inline]
    pub fn work_done(&self) -> f64 {
        self.consumed
    }

    /// Number of phases entered so far.
    #[inline]
    pub fn phases_started(&self) -> u64 {
        self.phases_started
    }

    /// Work remaining in the current phase (nominal ns) — used by the trace
    /// recorder to walk phase boundaries exactly.
    #[inline]
    pub fn remaining_in_phase(&self) -> f64 {
        self.remaining
    }
}

impl hcapp_sim_core::state::Snapshot for PhaseCursor {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        self.rng.save_state(w);
        w.token(
            "cursor.pattern_state",
            match self.state {
                PatternState::Low => "low",
                PatternState::High => "high",
            },
        );
        w.f64("cursor.activity", self.current.activity);
        w.f64("cursor.mem", self.current.mem_intensity);
        w.f64("cursor.work_ns", self.current.work_ns);
        w.f64("cursor.remaining", self.remaining);
        w.f64("cursor.consumed", self.consumed);
        w.u64("cursor.phases_started", self.phases_started);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.rng.load_state(r)?;
        self.state = match r.token("cursor.pattern_state")? {
            "low" => PatternState::Low,
            "high" => PatternState::High,
            _ => return None,
        };
        self.current.activity = r.f64("cursor.activity")?;
        self.current.mem_intensity = r.f64("cursor.mem")?;
        self.current.work_ns = r.f64("cursor.work_ns")?;
        self.remaining = r.f64("cursor.remaining")?;
        self.consumed = r.f64("cursor.consumed")?;
        self.phases_started = r.u64("cursor.phases_started")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DurRange, PhasePattern};
    use hcapp_sim_core::assert_close;

    fn steady_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "steady",
            pattern: PhasePattern::Steady {
                activity: 0.5,
                jitter: 0.0,
                dur: DurRange::micros(100.0, 100.0),
            },
            mem_intensity: 0.2,
            mem_jitter: 0.0,
        }
    }

    fn osc_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "osc",
            pattern: PhasePattern::Oscillating {
                lo: 0.2,
                hi: 0.8,
                lo_dur: DurRange::micros(10.0, 10.0),
                hi_dur: DurRange::micros(10.0, 10.0),
            },
            mem_intensity: 0.0,
            mem_jitter: 0.0,
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = PhaseCursor::new(osc_spec(), 42, 3);
        let mut b = PhaseCursor::new(osc_spec(), 42, 3);
        for _ in 0..10_000 {
            a.advance(777.0);
            b.advance(777.0);
            assert_eq!(a.sample(), b.sample());
        }
        assert_eq!(a.work_done(), b.work_done());
    }

    #[test]
    fn streams_decorrelate() {
        let mut a = PhaseCursor::new(osc_spec(), 42, 0);
        let mut b = PhaseCursor::new(osc_spec(), 42, 1);
        let mut agree = 0;
        let n = 1000;
        for _ in 0..n {
            a.advance(1_000.0);
            b.advance(1_000.0);
            if a.sample() == b.sample() {
                agree += 1;
            }
        }
        // Random phase offsets: should agree roughly half the time, never
        // always.
        assert!(agree < n, "streams fully synchronized");
        assert!(agree > 0, "two-level oscillators should sometimes coincide");
    }

    #[test]
    fn work_accumulates_exactly() {
        let mut c = PhaseCursor::new(steady_spec(), 1, 0);
        for _ in 0..1000 {
            c.advance(123.456);
        }
        assert_close!(c.work_done(), 123.456 * 1000.0, 1e-6);
    }

    #[test]
    fn phase_boundaries_crossed_correctly() {
        // 10 µs half-periods: advancing 100 µs crosses ~10 phases.
        let mut c = PhaseCursor::new(osc_spec(), 5, 0);
        let start = c.phases_started();
        c.advance(100_000.0);
        let crossed = c.phases_started() - start;
        assert!(
            (9..=11).contains(&crossed),
            "crossed {crossed} phases, expected ~10"
        );
    }

    #[test]
    fn big_advance_crosses_many_phases_without_hanging() {
        let mut c = PhaseCursor::new(osc_spec(), 9, 0);
        c.advance(50_000_000.0); // 50 ms over 10 µs phases = 5000 crossings
        assert!(c.phases_started() > 4000);
    }

    #[test]
    fn oscillation_visible_in_samples() {
        let mut c = PhaseCursor::new(osc_spec(), 11, 2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..100 {
            c.advance(5_000.0);
            let a = c.sample().activity;
            if (a - 0.2).abs() < 1e-9 {
                seen_lo = true;
            }
            if (a - 0.8).abs() < 1e-9 {
                seen_hi = true;
            }
        }
        assert!(seen_lo && seen_hi);
    }
}

//! Synthetic phase-based workloads.
//!
//! The paper drives its system with a PARSEC subset on the CPU
//! (blackscholes, fluidanimate, ferret, swaptions), a Rodinia subset on the
//! GPU (backprop, bfs, myocyte, sradv2) and a modelled SHA stream on the
//! accelerator, selected for their *power behaviour classes* — the combos in
//! Table 3 are literally named Low/Mid/Hi/Const/Burst. Since we replace the
//! trace-driven simulators with interval models (see DESIGN.md), workloads
//! are expressed as deterministic generators of *phases*: spans of work with
//! an activity factor (how hard the component switches) and a memory
//! intensity (how much of the time it stalls, which bounds the benefit of
//! running faster).
//!
//! Phases are **work-indexed**, not time-indexed: a throttled component
//! takes longer to get through the same phase, so power control feeds back
//! into the power trace exactly as it does on real hardware (this is what
//! makes HCAPP's over-throttling of ferret's bursts — the Figure 8
//! inversion — emerge rather than being scripted).
//!
//! * [`phase`] — [`Phase`], [`PhaseSample`] and the progress-rate model.
//! * [`spec`] — [`PhasePattern`] / [`BenchmarkSpec`]: the generator grammar.
//! * [`cursor`] — [`PhaseCursor`]: deterministic phase streams.
//! * [`benchmarks`] — the eight named benchmarks and their calibrated specs.
//! * [`combos`] — Table 3: the eight benchmark combinations.
//! * [`sha`] — the accelerator's work model.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod benchmarks;
pub mod combos;
pub mod cursor;
pub mod phase;
pub mod program;
pub mod sha;
pub mod spec;
pub mod trace;

pub use benchmarks::{Benchmark, PowerClass};
pub use combos::{combo_suite, Combo};
pub use cursor::PhaseCursor;
pub use program::{WorkloadProgram, WorkloadSource};
pub use phase::{progress_rate, Phase, PhaseSample};
pub use sha::ShaWorkload;
pub use spec::{BenchmarkSpec, PhasePattern};
pub use trace::{PhaseTrace, TracePlayer};

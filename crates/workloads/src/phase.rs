//! Phases and the progress-rate model.
//!
//! A [`Phase`] is a span of program execution with homogeneous behaviour:
//! a switching-activity factor (drives dynamic power) and a memory intensity
//! (drives how much faster the phase completes when the clock speeds up).
//! Work is measured in **nominal nanoseconds**: the time the phase would
//! take at the component's nominal frequency. [`progress_rate`] converts a
//! frequency ratio into nominal-nanoseconds-per-nanosecond progress.

/// A span of execution with homogeneous power/performance behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Switching activity factor in `[0, 1]` — multiplies dynamic power.
    pub activity: f64,
    /// Memory intensity in `[0, 1]` — 0 is fully compute-bound (perfect
    /// frequency scaling), 1 is fully memory-bound (no benefit beyond the
    /// memory-system rate).
    pub mem_intensity: f64,
    /// Remaining work in nominal nanoseconds (time at nominal frequency).
    pub work_ns: f64,
}

impl Phase {
    /// Construct a phase, clamping behaviour parameters into range.
    pub fn new(activity: f64, mem_intensity: f64, work_ns: f64) -> Self {
        Phase {
            activity: activity.clamp(0.0, 1.0),
            mem_intensity: mem_intensity.clamp(0.0, 1.0),
            work_ns: work_ns.max(0.0),
        }
    }

    /// The instantaneous behaviour sample the component simulators consume.
    pub fn sample(&self) -> PhaseSample {
        PhaseSample {
            activity: self.activity,
            mem_intensity: self.mem_intensity,
        }
    }
}

/// The per-tick behaviour handed to a component simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSample {
    /// Switching activity factor in `[0, 1]`.
    pub activity: f64,
    /// Memory intensity in `[0, 1]`.
    pub mem_intensity: f64,
}

impl PhaseSample {
    /// A fully idle sample (workload complete).
    pub const IDLE: PhaseSample = PhaseSample {
        activity: 0.0,
        mem_intensity: 0.0,
    };

    /// Relative IPC at frequency ratio `f_ratio = f / f_nominal`, normalized
    /// so the value is 1.0 at the nominal frequency.
    ///
    /// Model: instructions per cycle degrade as the core outruns the memory
    /// system, `IPC(f) ∝ 1 / (1 + m·f/f_nom)`, the standard first-order
    /// interval-model approximation (memory stalls take wall-clock time that
    /// does not shrink with core frequency).
    #[inline]
    pub fn relative_ipc(&self, f_ratio: f64) -> f64 {
        debug_assert!(f_ratio >= 0.0);
        let m = self.mem_intensity;
        (1.0 + m) / (1.0 + m * f_ratio)
    }
}

/// Progress through a phase, in nominal nanoseconds per wall-clock
/// nanosecond, at frequency ratio `f_ratio = f / f_nominal`.
///
/// `rate = f_ratio · IPC(f) / IPC(f_nom) = f_ratio · (1 + m) / (1 + m·f_ratio)`
///
/// Properties the experiments rely on:
/// * `rate(1) = 1` for any memory intensity (calibration point);
/// * compute-bound (`m = 0`): `rate = f_ratio` — perfect scaling;
/// * memory-bound (`m → 1`): rate saturates at `(1 + m)/m ≈ 2` — raising
///   the voltage on a memory-bound phase wastes power, which is what the
///   IPC-guided local controllers detect.
#[inline]
pub fn progress_rate(sample: PhaseSample, f_ratio: f64) -> f64 {
    f_ratio * sample.relative_ipc(f_ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn phase_clamps_inputs() {
        let p = Phase::new(1.5, -0.2, -5.0);
        assert_eq!(p.activity, 1.0);
        assert_eq!(p.mem_intensity, 0.0);
        assert_eq!(p.work_ns, 0.0);
    }

    #[test]
    fn nominal_rate_is_unity() {
        for m in [0.0, 0.3, 0.7, 1.0] {
            let s = PhaseSample {
                activity: 0.5,
                mem_intensity: m,
            };
            assert_close!(progress_rate(s, 1.0), 1.0, 1e-12);
        }
    }

    #[test]
    fn compute_bound_scales_linearly() {
        let s = PhaseSample {
            activity: 1.0,
            mem_intensity: 0.0,
        };
        assert_close!(progress_rate(s, 1.5), 1.5, 1e-12);
        assert_close!(progress_rate(s, 0.5), 0.5, 1e-12);
    }

    #[test]
    fn memory_bound_saturates() {
        let s = PhaseSample {
            activity: 1.0,
            mem_intensity: 1.0,
        };
        // rate(f) = 2f/(1+f): rate(4) = 1.6 < 2, and the limit is 2.
        assert_close!(progress_rate(s, 4.0), 1.6, 1e-12);
        assert!(progress_rate(s, 100.0) < 2.0);
    }

    #[test]
    fn rate_monotone_in_frequency() {
        let s = PhaseSample {
            activity: 1.0,
            mem_intensity: 0.6,
        };
        let mut prev = 0.0;
        for i in 0..100 {
            let r = progress_rate(s, i as f64 * 0.05);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn higher_mem_intensity_lower_gain() {
        // At the same above-nominal frequency, memory-bound phases gain less.
        let fast = 1.5;
        let light = PhaseSample {
            activity: 1.0,
            mem_intensity: 0.1,
        };
        let heavy = PhaseSample {
            activity: 1.0,
            mem_intensity: 0.9,
        };
        assert!(progress_rate(light, fast) > progress_rate(heavy, fast));
    }

    #[test]
    fn sample_extraction() {
        let p = Phase::new(0.7, 0.4, 100.0);
        let s = p.sample();
        assert_eq!(s.activity, 0.7);
        assert_eq!(s.mem_intensity, 0.4);
    }
}

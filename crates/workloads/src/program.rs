//! Generated-or-recorded workload programs.
//!
//! The chiplet simulators don't care whether their phases come from a
//! synthetic generator ([`PhaseCursor`]) or a recorded trace
//! ([`TracePlayer`]); [`WorkloadProgram`] is the common currency, and
//! [`WorkloadSource`] the config-level description (convertible from a bare
//! [`BenchmarkSpec`] so existing call sites keep working).

use std::sync::Arc;

use crate::cursor::PhaseCursor;
use crate::phase::PhaseSample;
use crate::spec::BenchmarkSpec;
use crate::trace::{PhaseTrace, TracePlayer};

/// Config-level description of a workload.
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// A synthetic generator spec (the paper's benchmarks).
    Spec(BenchmarkSpec),
    /// A recorded trace, replayed cyclically.
    Trace(Arc<PhaseTrace>),
}

impl From<BenchmarkSpec> for WorkloadSource {
    fn from(spec: BenchmarkSpec) -> Self {
        WorkloadSource::Spec(spec)
    }
}

impl From<Arc<PhaseTrace>> for WorkloadSource {
    fn from(trace: Arc<PhaseTrace>) -> Self {
        WorkloadSource::Trace(trace)
    }
}

impl WorkloadSource {
    /// The workload's display name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSource::Spec(s) => s.name,
            WorkloadSource::Trace(t) => t.name(),
        }
    }

    /// Instantiate the runtime program ( `(seed, stream_id)` select the
    /// generator's random stream; recorded traces ignore them).
    pub fn instantiate(&self, seed: u64, stream_id: u64) -> WorkloadProgram {
        match self {
            WorkloadSource::Spec(spec) => {
                WorkloadProgram::Generated(PhaseCursor::new(*spec, seed, stream_id))
            }
            WorkloadSource::Trace(trace) => {
                WorkloadProgram::Recorded(TracePlayer::new(trace.clone()))
            }
        }
    }
}

/// A running workload: either a generator or a trace replay.
#[derive(Debug, Clone)]
pub enum WorkloadProgram {
    /// Synthetic phases from a [`PhaseCursor`].
    Generated(PhaseCursor),
    /// Recorded phases from a [`TracePlayer`].
    Recorded(TracePlayer),
}

impl WorkloadProgram {
    /// The behaviour sample for the current instant.
    #[inline]
    pub fn sample(&self) -> PhaseSample {
        match self {
            WorkloadProgram::Generated(c) => c.sample(),
            WorkloadProgram::Recorded(p) => p.sample(),
        }
    }

    /// Advance by `work_ns` nominal nanoseconds of completed work.
    #[inline]
    pub fn advance(&mut self, work_ns: f64) {
        match self {
            WorkloadProgram::Generated(c) => c.advance(work_ns),
            WorkloadProgram::Recorded(p) => p.advance(work_ns),
        }
    }

    /// Total work consumed (nominal ns).
    #[inline]
    pub fn work_done(&self) -> f64 {
        match self {
            WorkloadProgram::Generated(c) => c.work_done(),
            WorkloadProgram::Recorded(p) => p.work_done(),
        }
    }
}

impl hcapp_sim_core::state::Snapshot for WorkloadProgram {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        match self {
            WorkloadProgram::Generated(c) => c.save_state(w),
            WorkloadProgram::Recorded(p) => p.save_state(w),
        }
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        match self {
            WorkloadProgram::Generated(c) => c.load_state(r),
            WorkloadProgram::Recorded(p) => p.load_state(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;

    #[test]
    fn spec_source_matches_raw_cursor() {
        let src: WorkloadSource = Benchmark::Bfs.spec().into();
        assert_eq!(src.name(), "bfs");
        let mut a = src.instantiate(9, 1);
        let mut b = PhaseCursor::new(Benchmark::Bfs.spec(), 9, 1);
        for _ in 0..1_000 {
            a.advance(321.0);
            b.advance(321.0);
            assert_eq!(a.sample(), b.sample());
        }
        assert_eq!(a.work_done(), b.work_done());
    }

    #[test]
    fn trace_source_replays() {
        let trace = std::sync::Arc::new(PhaseTrace::record(
            Benchmark::Swaptions.spec(),
            3,
            0,
            1_000_000.0,
        ));
        let src: WorkloadSource = trace.into();
        assert_eq!(src.name(), "swaptions");
        let mut p = src.instantiate(999, 999); // seed ignored for traces
        let mut q = src.instantiate(1, 2);
        for _ in 0..100 {
            p.advance(10_000.0);
            q.advance(10_000.0);
            assert_eq!(p.sample(), q.sample(), "trace replay must ignore seeds");
        }
    }
}

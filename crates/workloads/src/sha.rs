//! The SHA accelerator's work model.
//!
//! §4.4: "The total work that the accelerator has to complete is modeled as
//! a fixed number. The work completed on each cycle is linearly proportional
//! to the maximum usable voltage setting … When the total work is less than
//! or equal to zero, the accelerator can enter an idle state."
//!
//! [`ShaWorkload`] is that model: a backlog of hash work (in gigabits)
//! drained at the throughput the accelerator's LUT provides for the current
//! voltage. A `looping` variant refills the backlog — used when the
//! accelerator should stay busy for the entire test (the paper loops short
//! workloads, §4).

/// A fixed (or looping) backlog of hashing work.
#[derive(Debug, Clone, PartialEq)]
pub struct ShaWorkload {
    /// Work remaining in gigabits.
    remaining_gbits: f64,
    /// Initial backlog (for refills and progress reporting).
    initial_gbits: f64,
    /// Refill the backlog when drained instead of idling.
    looping: bool,
    /// Total work completed in gigabits.
    completed_gbits: f64,
}

impl ShaWorkload {
    /// A one-shot backlog of `gbits` gigabits.
    ///
    /// # Panics
    /// Panics if `gbits` is not positive.
    pub fn fixed(gbits: f64) -> Self {
        assert!(gbits > 0.0, "non-positive workload");
        ShaWorkload {
            remaining_gbits: gbits,
            initial_gbits: gbits,
            looping: false,
            completed_gbits: 0.0,
        }
    }

    /// A backlog that refills when drained (runs for the whole test).
    pub fn looping(gbits: f64) -> Self {
        let mut w = ShaWorkload::fixed(gbits);
        w.looping = true;
        w
    }

    /// Drain `gbits` of completed work; returns the amount actually drained
    /// (less than requested only when a one-shot backlog runs out).
    pub fn drain(&mut self, gbits: f64) -> f64 {
        debug_assert!(gbits >= 0.0);
        let mut todo = gbits;
        let mut done = 0.0;
        while todo > 0.0 {
            if self.remaining_gbits <= 0.0 {
                if self.looping {
                    self.remaining_gbits = self.initial_gbits;
                } else {
                    break;
                }
            }
            let step = todo.min(self.remaining_gbits);
            self.remaining_gbits -= step;
            self.completed_gbits += step;
            done += step;
            todo -= step;
        }
        done
    }

    /// True when a one-shot backlog is exhausted (the idle state of §4.4).
    pub fn is_idle(&self) -> bool {
        !self.looping && self.remaining_gbits <= 0.0
    }

    /// Work completed so far in gigabits.
    pub fn completed_gbits(&self) -> f64 {
        self.completed_gbits
    }

    /// Work remaining in the current backlog in gigabits.
    pub fn remaining_gbits(&self) -> f64 {
        self.remaining_gbits.max(0.0)
    }
}

impl hcapp_sim_core::state::Snapshot for ShaWorkload {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.f64("sha.remaining_gbits", self.remaining_gbits);
        w.f64("sha.completed_gbits", self.completed_gbits);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        self.remaining_gbits = r.f64("sha.remaining_gbits")?;
        self.completed_gbits = r.f64("sha.completed_gbits")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    #[test]
    fn fixed_drains_to_idle() {
        let mut w = ShaWorkload::fixed(10.0);
        assert!(!w.is_idle());
        assert_close!(w.drain(4.0), 4.0, 1e-12);
        assert_close!(w.remaining_gbits(), 6.0, 1e-12);
        // Requesting more than remains drains only what's left.
        assert_close!(w.drain(10.0), 6.0, 1e-12);
        assert!(w.is_idle());
        assert_close!(w.completed_gbits(), 10.0, 1e-12);
        // Further drains are no-ops.
        assert_close!(w.drain(5.0), 0.0, 1e-12);
    }

    #[test]
    fn looping_never_idles() {
        let mut w = ShaWorkload::looping(3.0);
        let drained = w.drain(10.0);
        assert_close!(drained, 10.0, 1e-12);
        assert!(!w.is_idle());
        assert_close!(w.completed_gbits(), 10.0, 1e-12);
        // Backlog refilled mid-drain: 10 = 3 + 3 + 3 + 1, leaving 2.
        assert_close!(w.remaining_gbits(), 2.0, 1e-12);
    }

    #[test]
    fn zero_drain_is_noop() {
        let mut w = ShaWorkload::fixed(5.0);
        assert_close!(w.drain(0.0), 0.0, 1e-12);
        assert_close!(w.remaining_gbits(), 5.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_backlog_panics() {
        let _ = ShaWorkload::fixed(0.0);
    }
}

//! The workload generator grammar.
//!
//! Each benchmark is described by a [`BenchmarkSpec`]: a [`PhasePattern`]
//! that generates the activity schedule, plus a memory intensity with
//! per-phase jitter. Three patterns cover the paper's behaviour classes:
//!
//! * [`PhasePattern::Steady`] — one activity level with small jitter
//!   (blackscholes, swaptions, myocyte);
//! * [`PhasePattern::Oscillating`] — alternates between a low and a high
//!   level (fluidanimate's frame loop, backprop's layer alternation,
//!   sradv2's iteration structure);
//! * [`PhasePattern::Bursty`] — long quiet spans punctuated by short
//!   high-power bursts (ferret's pipeline, bfs's frontier expansions).
//!   Burst durations sit *between* HCAPP's 1 µs and the RAPL-like 100 µs
//!   control periods, which is what separates the schemes in Figures 4/7.

use hcapp_sim_core::rng::DeterministicRng;

use crate::phase::Phase;

/// Range helper: `[lo, hi]` in nominal nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurRange {
    /// Shortest duration (nominal ns).
    pub lo: f64,
    /// Longest duration (nominal ns).
    pub hi: f64,
}

impl DurRange {
    /// Construct a range in microseconds (nominal).
    pub const fn micros(lo: f64, hi: f64) -> Self {
        DurRange {
            lo: lo * 1_000.0,
            hi: hi * 1_000.0,
        }
    }

    /// Sample uniformly.
    pub fn sample(&self, rng: &mut DeterministicRng) -> f64 {
        debug_assert!(self.lo <= self.hi);
        rng.uniform(self.lo, self.hi)
    }
}

/// The activity schedule of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhasePattern {
    /// A single activity level with per-phase jitter.
    Steady {
        /// Mean activity factor.
        activity: f64,
        /// Uniform jitter half-width applied per phase.
        jitter: f64,
        /// Phase duration range.
        dur: DurRange,
    },
    /// Alternating low/high activity levels, with independent duty cycles
    /// (real iterative programs spend less time in their hot kernels than in
    /// the surrounding work, which is what gives Figure 1 its peak ≈ 1.6×
    /// average shape).
    Oscillating {
        /// Activity of the low phase.
        lo: f64,
        /// Activity of the high phase.
        hi: f64,
        /// Duration range of low phases.
        lo_dur: DurRange,
        /// Duration range of high phases.
        hi_dur: DurRange,
    },
    /// Quiet baseline with short high bursts.
    Bursty {
        /// Baseline activity.
        base: f64,
        /// Burst activity.
        burst: f64,
        /// Duration range of quiet spans.
        base_dur: DurRange,
        /// Duration range of bursts.
        burst_dur: DurRange,
    },
}

/// A complete benchmark description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (as in the paper).
    pub name: &'static str,
    /// Activity schedule.
    pub pattern: PhasePattern,
    /// Mean memory intensity in `[0, 1]`.
    pub mem_intensity: f64,
    /// Uniform jitter half-width on the memory intensity per phase.
    pub mem_jitter: f64,
}

/// Internal generator state for the oscillating/bursty patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum PatternState {
    /// Next phase is the low/base part.
    #[default]
    Low,
    /// Next phase is the high/burst part.
    High,
}

impl BenchmarkSpec {
    /// Generate the next phase, advancing `state` and drawing from `rng`.
    pub(crate) fn next_phase(
        &self,
        rng: &mut DeterministicRng,
        state: &mut PatternState,
    ) -> Phase {
        let mem = (self.mem_intensity + rng.uniform(-self.mem_jitter, self.mem_jitter))
            .clamp(0.0, 1.0);
        match self.pattern {
            PhasePattern::Steady {
                activity,
                jitter,
                dur,
            } => {
                let a = activity + rng.uniform(-jitter, jitter);
                Phase::new(a, mem, dur.sample(rng))
            }
            PhasePattern::Oscillating {
                lo,
                hi,
                lo_dur,
                hi_dur,
            } => match state {
                PatternState::Low => {
                    *state = PatternState::High;
                    Phase::new(lo, mem, lo_dur.sample(rng))
                }
                PatternState::High => {
                    *state = PatternState::Low;
                    Phase::new(hi, mem, hi_dur.sample(rng))
                }
            },
            PhasePattern::Bursty {
                base,
                burst,
                base_dur,
                burst_dur,
            } => match state {
                PatternState::Low => {
                    *state = PatternState::High;
                    Phase::new(base, mem, base_dur.sample(rng))
                }
                PatternState::High => {
                    *state = PatternState::Low;
                    Phase::new(burst, mem, burst_dur.sample(rng))
                }
            },
        }
    }

    /// Long-run mean activity of the pattern (duration-weighted, using range
    /// midpoints). Used for calibration sanity checks.
    pub fn mean_activity(&self) -> f64 {
        match self.pattern {
            PhasePattern::Steady { activity, .. } => activity,
            PhasePattern::Oscillating {
                lo,
                hi,
                lo_dur,
                hi_dur,
            } => {
                let tl = 0.5 * (lo_dur.lo + lo_dur.hi);
                let th = 0.5 * (hi_dur.lo + hi_dur.hi);
                (lo * tl + hi * th) / (tl + th)
            }
            PhasePattern::Bursty {
                base,
                burst,
                base_dur,
                burst_dur,
            } => {
                let tb = 0.5 * (base_dur.lo + base_dur.hi);
                let tu = 0.5 * (burst_dur.lo + burst_dur.hi);
                (base * tb + burst * tu) / (tb + tu)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcapp_sim_core::assert_close;

    fn rng() -> DeterministicRng {
        DeterministicRng::new(7)
    }

    #[test]
    fn dur_range_sampling() {
        let d = DurRange::micros(10.0, 20.0);
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((10_000.0..=20_000.0).contains(&x));
        }
    }

    #[test]
    fn steady_phases_jitter_around_mean() {
        let spec = BenchmarkSpec {
            name: "steady",
            pattern: PhasePattern::Steady {
                activity: 0.5,
                jitter: 0.1,
                dur: DurRange::micros(100.0, 200.0),
            },
            mem_intensity: 0.3,
            mem_jitter: 0.05,
        };
        let mut r = rng();
        let mut st = PatternState::default();
        let mut sum = 0.0;
        for _ in 0..2000 {
            let p = spec.next_phase(&mut r, &mut st);
            assert!((0.4..=0.6).contains(&p.activity));
            assert!((0.25..=0.35).contains(&p.mem_intensity));
            sum += p.activity;
        }
        assert_close!(sum / 2000.0, 0.5, 0.01);
    }

    #[test]
    fn oscillating_alternates() {
        let spec = BenchmarkSpec {
            name: "osc",
            pattern: PhasePattern::Oscillating {
                lo: 0.3,
                hi: 0.9,
                lo_dur: DurRange::micros(50.0, 50.0),
                hi_dur: DurRange::micros(50.0, 50.0),
            },
            mem_intensity: 0.2,
            mem_jitter: 0.0,
        };
        let mut r = rng();
        let mut st = PatternState::default();
        let a: Vec<f64> = (0..6)
            .map(|_| spec.next_phase(&mut r, &mut st).activity)
            .collect();
        assert_eq!(a, vec![0.3, 0.9, 0.3, 0.9, 0.3, 0.9]);
    }

    #[test]
    fn bursty_durations_respect_ranges() {
        let spec = BenchmarkSpec {
            name: "bursty",
            pattern: PhasePattern::Bursty {
                base: 0.2,
                burst: 0.95,
                base_dur: DurRange::micros(500.0, 2500.0),
                burst_dur: DurRange::micros(80.0, 350.0),
            },
            mem_intensity: 0.3,
            mem_jitter: 0.0,
        };
        let mut r = rng();
        let mut st = PatternState::default();
        for _ in 0..100 {
            let quiet = spec.next_phase(&mut r, &mut st);
            assert_eq!(quiet.activity, 0.2);
            assert!((500_000.0..=2_500_000.0).contains(&quiet.work_ns));
            let burst = spec.next_phase(&mut r, &mut st);
            assert_eq!(burst.activity, 0.95);
            assert!((80_000.0..=350_000.0).contains(&burst.work_ns));
        }
    }

    #[test]
    fn mean_activity_estimates() {
        let osc = BenchmarkSpec {
            name: "osc",
            pattern: PhasePattern::Oscillating {
                lo: 0.4,
                hi: 0.8,
                lo_dur: DurRange::micros(3.0, 3.0),
                hi_dur: DurRange::micros(1.0, 1.0),
            },
            mem_intensity: 0.0,
            mem_jitter: 0.0,
        };
        // Duty-weighted: (0.4*3 + 0.8*1) / 4 = 0.5.
        assert_close!(osc.mean_activity(), 0.5, 1e-12);

        let bursty = BenchmarkSpec {
            name: "b",
            pattern: PhasePattern::Bursty {
                base: 0.2,
                burst: 1.0,
                base_dur: DurRange::micros(300.0, 300.0),
                burst_dur: DurRange::micros(100.0, 100.0),
            },
            mem_intensity: 0.0,
            mem_jitter: 0.0,
        };
        assert_close!(bursty.mean_activity(), 0.4, 1e-12);
    }
}

//! Recorded workload traces.
//!
//! The paper drives its simulators with real benchmark binaries; our
//! generators reproduce their behaviour classes. For users who *have*
//! measured phase traces (from performance counters, from Sniper/GPGPU-Sim
//! runs, or recorded from our own generators), [`PhaseTrace`] is the
//! interchange format — a list of `(activity, mem_intensity, work_ns)`
//! phases with CSV round-tripping — and [`TracePlayer`] replays one
//! cyclically with exactly the [`PhaseCursor`] work-indexed semantics.
//!
//! [`PhaseCursor`]: crate::cursor::PhaseCursor

use std::fmt::Write as _;

use crate::phase::{Phase, PhaseSample};

/// A recorded sequence of phases.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTrace {
    name: String,
    phases: Vec<Phase>,
}

/// Errors from parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The header row is missing or wrong.
    BadHeader(String),
    /// A data row has the wrong arity or an unparsable field.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// The offending row.
        row: String,
    },
    /// The trace contains no phases.
    Empty,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::BadHeader(h) => {
                write!(f, "bad header '{h}' (expected activity,mem_intensity,work_ns)")
            }
            TraceParseError::BadRow { line, row } => write!(f, "bad row at line {line}: '{row}'"),
            TraceParseError::Empty => write!(f, "trace has no phases"),
        }
    }
}

impl std::error::Error for TraceParseError {}

impl PhaseTrace {
    /// Build a trace from phases.
    ///
    /// # Panics
    /// Panics if `phases` is empty or contains a non-positive-work phase.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "empty trace");
        for p in &phases {
            assert!(p.work_ns > 0.0, "phase with non-positive work");
        }
        PhaseTrace {
            name: name.into(),
            phases,
        }
    }

    /// Record a trace by sampling a generator for `total_work_ns` of nominal
    /// work — a convenient way to materialize any [`BenchmarkSpec`] as a
    /// shareable file.
    ///
    /// [`BenchmarkSpec`]: crate::spec::BenchmarkSpec
    pub fn record(
        spec: crate::spec::BenchmarkSpec,
        seed: u64,
        stream_id: u64,
        total_work_ns: f64,
    ) -> Self {
        let mut cursor = crate::cursor::PhaseCursor::new(spec, seed, stream_id);
        let mut phases = Vec::new();
        let mut recorded = 0.0;
        // Walk phase by phase: consume exactly one phase per step by
        // sampling, then advancing past the current phase boundary.
        while recorded < total_work_ns {
            let sample = cursor.sample();
            let remaining = cursor.remaining_in_phase();
            let take = remaining.max(1.0);
            phases.push(Phase::new(sample.activity, sample.mem_intensity, take));
            cursor.advance(take);
            recorded += take;
        }
        PhaseTrace::new(spec.name, phases)
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total nominal work of one pass through the trace.
    pub fn total_work_ns(&self) -> f64 {
        self.phases.iter().map(|p| p.work_ns).sum()
    }

    /// Serialize as CSV (`activity,mem_intensity,work_ns`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("activity,mem_intensity,work_ns\n");
        for p in &self.phases {
            let _ = writeln!(out, "{:.6},{:.6},{:.3}", p.activity, p.mem_intensity, p.work_ns);
        }
        out
    }

    /// Parse from CSV produced by [`PhaseTrace::to_csv`] (or by any tool
    /// emitting the same three columns).
    pub fn from_csv(name: impl Into<String>, csv: &str) -> Result<Self, TraceParseError> {
        let mut lines = csv.lines();
        let header = lines.next().unwrap_or("").trim();
        if header != "activity,mem_intensity,work_ns" {
            return Err(TraceParseError::BadHeader(header.to_string()));
        }
        let mut phases = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            let parsed: Option<(f64, f64, f64)> = match fields.as_slice() {
                [a, m, w] => match (a.trim().parse(), m.trim().parse(), w.trim().parse()) {
                    (Ok(a), Ok(m), Ok(w)) => Some((a, m, w)),
                    _ => None,
                },
                _ => None,
            };
            let Some((a, m, w)) = parsed.filter(|&(_, _, w)| w > 0.0) else {
                return Err(TraceParseError::BadRow {
                    line: i + 2,
                    row: line.to_string(),
                });
            };
            phases.push(Phase::new(a, m, w));
        }
        if phases.is_empty() {
            return Err(TraceParseError::Empty);
        }
        Ok(PhaseTrace {
            name: name.into(),
            phases,
        })
    }
}

/// Cyclic, work-indexed playback of a [`PhaseTrace`] — the recorded
/// counterpart of [`PhaseCursor`].
///
/// [`PhaseCursor`]: crate::cursor::PhaseCursor
#[derive(Debug, Clone)]
pub struct TracePlayer {
    trace: std::sync::Arc<PhaseTrace>,
    index: usize,
    remaining: f64,
    consumed: f64,
}

impl TracePlayer {
    /// Start playback at the trace's beginning.
    pub fn new(trace: std::sync::Arc<PhaseTrace>) -> Self {
        let remaining = trace.phases[0].work_ns;
        TracePlayer {
            trace,
            index: 0,
            remaining,
            consumed: 0.0,
        }
    }

    /// The behaviour sample for the current instant.
    pub fn sample(&self) -> PhaseSample {
        self.trace.phases[self.index].sample()
    }

    /// Advance by `work_ns` nominal nanoseconds, wrapping cyclically.
    pub fn advance(&mut self, work_ns: f64) {
        debug_assert!(work_ns >= 0.0);
        self.consumed += work_ns;
        let mut left = work_ns;
        while left >= self.remaining {
            left -= self.remaining;
            self.index = (self.index + 1) % self.trace.phases.len();
            self.remaining = self.trace.phases[self.index].work_ns;
        }
        self.remaining -= left;
    }

    /// Total work consumed.
    pub fn work_done(&self) -> f64 {
        self.consumed
    }
}

impl hcapp_sim_core::state::Snapshot for TracePlayer {
    fn save_state(&self, w: &mut hcapp_sim_core::state::StateWriter) {
        w.usize("player.index", self.index);
        w.f64("player.remaining", self.remaining);
        w.f64("player.consumed", self.consumed);
    }

    fn load_state(&mut self, r: &mut hcapp_sim_core::state::StateReader<'_>) -> Option<()> {
        let index = r.usize("player.index")?;
        if index >= self.trace.phases().len() {
            return None;
        }
        self.index = index;
        self.remaining = r.f64("player.remaining")?;
        self.consumed = r.f64("player.consumed")?;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use hcapp_sim_core::assert_close;
    use std::sync::Arc;

    fn small_trace() -> PhaseTrace {
        PhaseTrace::new(
            "t",
            vec![
                Phase::new(0.2, 0.1, 1_000.0),
                Phase::new(0.9, 0.5, 500.0),
            ],
        )
    }

    #[test]
    fn csv_roundtrip() {
        let t = small_trace();
        let csv = t.to_csv();
        let back = PhaseTrace::from_csv("t", &csv).unwrap();
        assert_eq!(back.phases().len(), 2);
        assert_close!(back.phases()[0].activity, 0.2, 1e-9);
        assert_close!(back.phases()[1].work_ns, 500.0, 1e-9);
        assert_close!(back.total_work_ns(), 1_500.0, 1e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            PhaseTrace::from_csv("x", "wrong,header\n1,2"),
            Err(TraceParseError::BadHeader(_))
        ));
        assert!(matches!(
            PhaseTrace::from_csv("x", "activity,mem_intensity,work_ns\n0.5,oops,10"),
            Err(TraceParseError::BadRow { line: 2, .. })
        ));
        assert!(matches!(
            PhaseTrace::from_csv("x", "activity,mem_intensity,work_ns\n"),
            Err(TraceParseError::Empty)
        ));
        // Zero-work rows are rejected (they would stall playback).
        assert!(PhaseTrace::from_csv("x", "activity,mem_intensity,work_ns\n0.5,0.1,0").is_err());
    }

    #[test]
    fn player_wraps_cyclically() {
        let mut p = TracePlayer::new(Arc::new(small_trace()));
        assert_close!(p.sample().activity, 0.2, 1e-12);
        p.advance(1_000.0); // exactly into phase 2
        assert_close!(p.sample().activity, 0.9, 1e-12);
        p.advance(500.0); // wraps to phase 1
        assert_close!(p.sample().activity, 0.2, 1e-12);
        // A huge advance crosses many cycles without hanging.
        p.advance(1_500_000.0);
        assert_close!(p.work_done(), 1_501_500.0, 1e-6);
    }

    #[test]
    fn record_matches_generator_statistics() {
        let spec = Benchmark::Swaptions.spec();
        let trace = PhaseTrace::record(spec, 42, 0, 5_000_000.0);
        assert!(trace.total_work_ns() >= 5_000_000.0);
        // Mean activity of the recording tracks the spec's mean.
        let total = trace.total_work_ns();
        let mean: f64 = trace
            .phases()
            .iter()
            .map(|p| p.activity * p.work_ns)
            .sum::<f64>()
            / total;
        assert_close!(mean, spec.mean_activity(), 0.05);
    }

    #[test]
    fn replay_of_recording_is_faithful() {
        let spec = Benchmark::Ferret.spec();
        let trace = Arc::new(PhaseTrace::record(spec, 7, 3, 2_000_000.0));
        let mut player = TracePlayer::new(trace.clone());
        // Walking the player phase-exact reproduces the recorded phases.
        for phase in trace.phases().iter().take(20) {
            let s = player.sample();
            assert_close!(s.activity, phase.activity, 1e-12);
            assert_close!(s.mem_intensity, phase.mem_intensity, 1e-12);
            player.advance(phase.work_ns);
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = PhaseTrace::new("x", vec![]);
    }
}

//! Scenario: choosing a power-control scheme for a pin-constrained package.
//!
//! The paper's motivating problem (§1): package pins are budgeted, power
//! pins are provisioned for the worst case, and every scheme that can't
//! hold the 20 µs package-pin limit forces the designer to buy more pins.
//! This example runs all four evaluated schemes on a bursty workload mix —
//! the hardest case for slow controllers — and prints the §5.1-style
//! verdict for each.
//!
//! ```text
//! cargo run --release --example capping_showdown
//! ```

use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::metrics::violation::classify;
use hcapp_repro::sim_core::report::Table;
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::workloads::combos::combo_by_name;

fn main() {
    let combo = combo_by_name("Burst-Burst").expect("known combo");
    let limit = PowerLimit::package_pin();
    let duration = SimDuration::from_millis(40);

    let baseline = Simulation::new(
        SystemConfig::paper_system(combo, 7),
        RunConfig::new(duration, ControlScheme::fixed_baseline(), limit.guardbanded_target()),
    )
    .run();

    let mut table = Table::new(
        format!("Power-capping showdown on {} (100 W / 20 us)", combo.name),
        &["scheme", "max/limit", "verdict", "PPE", "speedup vs fixed"],
    );
    for scheme in ControlScheme::all() {
        let out = Simulation::new(
            SystemConfig::paper_system(combo, 7),
            RunConfig::new(duration, scheme, limit.guardbanded_target()),
        )
        .run();
        let ratio = out.max_ratio(&limit).unwrap_or(0.0);
        table.add_row(vec![
            scheme.name().to_string(),
            format!("{ratio:.3}"),
            classify(ratio).marker().to_string(),
            format!("{:.1}%", out.ppe(limit.budget) * 100.0),
            format!("{:.3}x", out.speedup_vs(&baseline)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nThe ferret/bfs bursts last 50-400 us: far longer than HCAPP's 1 us loop,\n\
         but at or under the RAPL-like 100 us period and invisible to a 10 ms\n\
         software loop - which is exactly why only the hardware-speed scheme\n\
         holds the package-pin limit (paper Fig. 4)."
    );
}

//! Scenario: scaling to a many-chiplet interposer.
//!
//! 2.5D integration keeps adding chiplets; a centralized capper has to haul
//! every chiplet's telemetry across shared wires before it can act, so its
//! control period grows with the package. HCAPP's "wire" is the power rail
//! itself — its 1 µs loop is set by physics (Table 1), not by fan-in.
//!
//! This example builds a 24-chiplet package (8× the paper system), runs
//! HCAPP against a centralized-aggregation model, and uses the
//! chiplet-parallel executor (`run_parallel`) to keep the host busy too.
//!
//! ```text
//! cargo run --release --example many_chiplets
//! ```

use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::sim_core::report::Table;
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::sim_core::units::Watt;
use hcapp_repro::workloads::combos::combo_by_name;

fn main() {
    let combo = combo_by_name("Hi-Hi").expect("known combo");
    let duration = SimDuration::from_millis(10);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut table = Table::new(
        "Scaling a 2.5D package: HCAPP vs centralized aggregation",
        &["chiplets", "scheme", "control period", "max/limit", "PPE"],
    );

    for n_each in [1usize, 4, 8] {
        let n_domains = 3 * n_each;
        let budget = Watt::new(100.0 / 3.0 * n_domains as f64);
        let limit = PowerLimit::new(budget, SimDuration::from_micros(20));
        let target = budget * limit.guardband_factor();

        // HCAPP: period pinned at 1 µs regardless of package size.
        let hcapp = Simulation::new(
            SystemConfig::scaled_system(combo, n_each, n_each, n_each, 3).expect("nonzero"),
            RunConfig::new(duration, ControlScheme::Hcapp, target),
        )
        .run_parallel(workers);

        // Centralized: +2 µs of telemetry aggregation per domain.
        let central_period = SimDuration::from_micros(1 + 2 * n_domains as u64);
        let central = Simulation::new(
            SystemConfig::scaled_system(combo, n_each, n_each, n_each, 3).expect("nonzero"),
            RunConfig::new(duration, ControlScheme::CustomPeriod(central_period), target),
        )
        .run_parallel(workers);

        for (name, period, out) in [
            ("HCAPP", SimDuration::from_micros(1), &hcapp),
            ("centralized", central_period, &central),
        ] {
            table.add_row(vec![
                format!("{n_domains}"),
                name.to_string(),
                format!("{period}"),
                format!("{:.3}", out.max_ratio(&limit).unwrap_or(0.0)),
                format!("{:.1}%", out.ppe(budget) * 100.0),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nHCAPP's max-power ratio stays flat as chiplets are added; the\n\
         centralized controller's growing aggregation latency lets fast\n\
         transients through (the paper's scalability argument, §1-§2)."
    );
}

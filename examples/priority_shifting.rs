//! Scenario: steering power to the component that matters (§5.3 / §6).
//!
//! An OS knows things the hardware cannot: that the GPU has a frame
//! deadline, or that the SHA engine is on the critical path of a TLS
//! handshake storm. HCAPP's domain controllers expose a priority register;
//! writing 0.9 de-prioritizes a domain by 10%. This example prioritizes each
//! component in turn (the paper's §5.3 static policy), then runs the §6
//! future-work *dynamic* policy that boosts whichever component lags.
//!
//! ```text
//! cargo run --release --example priority_shifting
//! ```

use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation, SoftwareConfig};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::software::ComponentKind;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::sim_core::report::Table;
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::workloads::combos::combo_by_name;

fn main() {
    let combo = combo_by_name("Mid-Mid").expect("known combo");
    let limit = PowerLimit::package_pin();
    let duration = SimDuration::from_millis(20);

    let run = |software: SoftwareConfig| {
        Simulation::new(
            SystemConfig::paper_system(combo, 21),
            RunConfig::new(duration, ControlScheme::Hcapp, limit.guardbanded_target())
                .with_software(software),
        )
        .run()
    };

    let neutral = run(SoftwareConfig::None);

    let mut table = Table::new(
        format!("Priority shifting on {} (HCAPP + software interface)", combo.name),
        &["policy", "CPU work", "GPU work", "SHA work", "max/limit"],
    );
    let row = |name: &str, out: &hcapp_repro::hcapp::outcome::RunOutcome| {
        let rel = |k: ComponentKind| {
            let b = neutral.work_for(k).unwrap();
            let w = out.work_for(k).unwrap();
            format!("{:+.1}%", (w / b - 1.0) * 100.0)
        };
        vec![
            name.to_string(),
            rel(ComponentKind::Cpu),
            rel(ComponentKind::Gpu),
            rel(ComponentKind::Sha),
            format!("{:.3}", out.max_ratio(&limit).unwrap_or(0.0)),
        ]
    };

    for kind in ComponentKind::ALL {
        let out = run(SoftwareConfig::StaticPriority(kind));
        table.add_row(row(&format!("prioritize {}", kind.name()), &out));
    }
    let dynamic = run(SoftwareConfig::DynamicBacklog);
    table.add_row(row("dynamic backlog (§6)", &dynamic));

    print!("{}", table.render());
    println!(
        "\nEvery policy keeps the same global power cap - the priority register\n\
         only changes *where* the capped budget flows (paper Fig. 10: maximum\n\
         power and PPE are unchanged because the global controller handles them)."
    );
}

//! Quickstart: cap a heterogeneous package with HCAPP.
//!
//! Builds the paper's target system (8-core CPU + 15-SM GPU + SHA
//! accelerator on one interposer), runs it for 20 ms under the 100 W
//! package-pin limit with and without HCAPP, and prints the three headline
//! metrics: maximum windowed power, average power (→ PPE), and speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::workloads::combos::combo_by_name;

fn main() {
    // The workload mix: fluidanimate on the CPU, backprop on the GPU, the
    // modelled SHA stream on the accelerator (Table 3's "Hi-Hi").
    let combo = combo_by_name("Hi-Hi").expect("known combo");
    let limit = PowerLimit::package_pin(); // 100 W over 20 µs
    let duration = SimDuration::from_millis(20);

    println!("== HCAPP quickstart ==");
    println!(
        "package: CPU + GPU + SHA | workload: {} | limit: {:.0} over {}",
        combo.name, limit.budget, limit.window
    );
    println!(
        "controller target: {:.1} (guardband {:.0}% for the {} window)\n",
        limit.guardbanded_target(),
        limit.guardband_factor() * 100.0,
        limit.window
    );

    // 1. The static baseline: fixed 0.95 V, no controllers.
    let baseline = Simulation::new(
        SystemConfig::paper_system(combo, 42),
        RunConfig::new(duration, ControlScheme::fixed_baseline(), limit.guardbanded_target()),
    )
    .run();

    // 2. The same package under HCAPP's three-level control.
    let capped = Simulation::new(
        SystemConfig::paper_system(combo, 42),
        RunConfig::new(duration, ControlScheme::Hcapp, limit.guardbanded_target()),
    )
    .run();

    for (name, out) in [("Fixed 0.95 V", &baseline), ("HCAPP", &capped)] {
        println!(
            "{name:12}  avg power {:>7.1}  max/limit {:.3}  PPE {:.1}%",
            out.avg_power,
            out.max_ratio(&limit).unwrap_or(0.0),
            out.ppe(limit.budget) * 100.0,
        );
    }

    let speedup = capped.speedup_vs(&baseline);
    println!("\nHCAPP speedup over the fixed baseline (Eq. 3): {speedup:.3}x");
    for (kind, s) in capped.component_speedups(&baseline) {
        println!("  {:4} {s:.3}x", kind.name());
    }
    assert!(
        capped.respects(&limit).unwrap_or(false),
        "HCAPP must respect the package-pin limit"
    );
    println!("\npackage-pin limit respected: yes");
}

//! Scenario: drive the simulator with a recorded workload trace.
//!
//! The synthetic generators reproduce benchmark *classes*; if you have a
//! real phase trace — from performance counters, from a Sniper/GPGPU-Sim
//! run, or recorded from the generators themselves — you can replay it
//! through the whole HCAPP stack. This example records fluidanimate's
//! phases to the CSV interchange format, replays them, and shows the
//! replayed run lands in the same regulation band.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use std::sync::Arc;

use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::system::{DomainSpec, SystemConfig};
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::workloads::benchmarks::Benchmark;
use hcapp_repro::workloads::combos::combo_by_name;
use hcapp_repro::workloads::trace::PhaseTrace;

fn main() {
    let combo = combo_by_name("Hi-Hi").expect("known combo");
    let limit = PowerLimit::package_pin();
    let duration = SimDuration::from_millis(20);

    // 1. Record 20 ms of fluidanimate's phase behaviour to CSV.
    let trace = PhaseTrace::record(Benchmark::Fluidanimate.spec(), 42, 1000, 20e6);
    let csv = trace.to_csv();
    println!(
        "recorded {} phases of {} ({:.1} ms nominal, {} bytes of CSV)",
        trace.phases().len(),
        trace.name(),
        trace.total_work_ns() * 1e-6,
        csv.len()
    );

    // 2. Round-trip through the interchange format (what a user would load
    //    from disk).
    let loaded = Arc::new(PhaseTrace::from_csv("fluidanimate", &csv).expect("round trip"));

    // 3. Run the paper system twice: generated workload vs. the recording.
    let generated = Simulation::new(
        SystemConfig::paper_system(combo, 42),
        RunConfig::new(duration, ControlScheme::Hcapp, limit.guardbanded_target()),
    )
    .run();

    let mut sys = SystemConfig::paper_system(combo, 42);
    for d in &mut sys.domains {
        if let DomainSpec::Cpu { workload, .. } = d {
            *workload = loaded.clone().into();
        }
    }
    let replayed = Simulation::new(
        sys,
        RunConfig::new(duration, ControlScheme::Hcapp, limit.guardbanded_target()),
    )
    .run();

    println!("\n{:12} {:>10} {:>10} {:>8}", "workload", "avg power", "max/limit", "PPE");
    for (name, out) in [("generated", &generated), ("replayed", &replayed)] {
        println!(
            "{name:12} {:>10} {:>10.3} {:>7.1}%",
            format!("{:.1}", out.avg_power),
            out.max_ratio(&limit).unwrap_or(0.0),
            out.ppe(limit.budget) * 100.0
        );
    }
    assert!(replayed.respects(&limit).unwrap());
    let delta = (replayed.ppe(limit.budget) - generated.ppe(limit.budget)).abs();
    println!(
        "\nPPE difference between generated and replayed runs: {:.2} points",
        delta * 100.0
    );
    println!("(the recording replays the same phase behaviour through the same controllers)");
}

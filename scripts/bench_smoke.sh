#!/bin/sh
# Smoke-mode scaling benches, written to results/ so the perf trajectory
# is tracked across PRs:
#   1. bench_parallel: serial vs pooled vs batched wall-clock plus
#      cold/warm cache timing -> results/BENCH_parallel.json, gated by
#      results/BENCH_parallel_thresholds.json.
#   2. hcapp bench: the quantum-stepper kernel's quanta/sec sweep over
#      package sizes {3,16,64,256} under the serial/pooled/batched
#      executors, plus the legacy-stepper baseline and kernel-vs-legacy
#      ratio -> results/BENCH_kernel.json, gated by
#      results/BENCH_thresholds.json. (scripts/check.sh runs the faster
#      {3,64}-point variant of the same gate.)
# Knobs (all optional):
#   HCAPP_BENCH_MS       simulated milliseconds per run   (default 20)
#   HCAPP_BENCH_SCALE    domains per kind                 (default 4 -> 12)
#   HCAPP_BENCH_WORKERS  pool size                        (default 4)
#   HCAPP_BENCH_TRIALS   best-of-N trials                 (default 3)
#   HCAPP_BENCH_POINTS   kernel-bench domain counts       (default 3,16,64,256;
#                        a non-default list writes BENCH_kernel_smoke.json so
#                        the committed full-sweep artifact is not clobbered)
set -eu
cd "$(dirname "$0")/.."

cargo build --release -q -p hcapp-experiments --bin bench_parallel
./target/release/bench_parallel

test -s results/BENCH_parallel.json || {
    echo "bench_smoke: results/BENCH_parallel.json was not written" >&2
    exit 1
}

# Perf regression gates: the committed thresholds are deliberately loose
# (smoke timings are noisy) — they catch order-of-magnitude regressions
# like batching, the warm cache or the stepper kernel silently stopping
# to engage, not percent-level drift. Re-baseline via the two thresholds
# files in results/.
cargo run --release -q -p hcapp-cli -- analyze \
    --assert results/BENCH_parallel_thresholds.json \
    --report results/BENCH_parallel.json

points="${HCAPP_BENCH_POINTS:-3,16,64,256}"
kernel_out=results/BENCH_kernel.json
[ "$points" = "3,16,64,256" ] || kernel_out=results/BENCH_kernel_smoke.json

cargo run --release -q -p hcapp-cli -- bench \
    --points "$points" \
    --ms "${HCAPP_BENCH_MS:-10}" \
    --workers "${HCAPP_BENCH_WORKERS:-4}" \
    --trials "${HCAPP_BENCH_TRIALS:-3}" \
    --out "$kernel_out"

test -s "$kernel_out" || {
    echo "bench_smoke: $kernel_out was not written" >&2
    exit 1
}

cargo run --release -q -p hcapp-cli -- analyze \
    --assert results/BENCH_thresholds.json --report "$kernel_out"

[ "$kernel_out" = results/BENCH_kernel.json ] || rm -f "$kernel_out"

#!/bin/sh
# Smoke-mode scaling bench: serial vs pooled vs batched wall-clock plus
# cold/warm cache timing, written to results/BENCH_parallel.json so the
# perf trajectory is tracked across PRs. Knobs (all optional):
#   HCAPP_BENCH_MS       simulated milliseconds per run   (default 20)
#   HCAPP_BENCH_SCALE    domains per kind                 (default 4 -> 12)
#   HCAPP_BENCH_WORKERS  pool size                        (default 4)
#   HCAPP_BENCH_TRIALS   best-of-N trials                 (default 3)
set -eu
cd "$(dirname "$0")/.."

cargo build --release -q -p hcapp-experiments --bin bench_parallel
./target/release/bench_parallel

test -s results/BENCH_parallel.json || {
    echo "bench_smoke: results/BENCH_parallel.json was not written" >&2
    exit 1
}

# Perf regression gate: the committed thresholds are deliberately loose
# (smoke timings are noisy) — they catch order-of-magnitude regressions
# like batching or the warm cache silently stopping to engage, not
# percent-level drift. Re-baseline via results/BENCH_thresholds.json.
cargo run --release -q -p hcapp-cli -- analyze \
    --assert results/BENCH_thresholds.json --report results/BENCH_parallel.json

#!/bin/sh
# Smoke-mode scaling bench: serial vs pooled vs batched wall-clock plus
# cold/warm cache timing, written to results/BENCH_parallel.json so the
# perf trajectory is tracked across PRs. Knobs (all optional):
#   HCAPP_BENCH_MS       simulated milliseconds per run   (default 20)
#   HCAPP_BENCH_SCALE    domains per kind                 (default 4 -> 12)
#   HCAPP_BENCH_WORKERS  pool size                        (default 4)
#   HCAPP_BENCH_TRIALS   best-of-N trials                 (default 3)
set -eu
cd "$(dirname "$0")/.."

cargo build --release -q -p hcapp-experiments --bin bench_parallel
./target/release/bench_parallel

test -s results/BENCH_parallel.json || {
    echo "bench_smoke: results/BENCH_parallel.json was not written" >&2
    exit 1
}

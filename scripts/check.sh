#!/bin/sh
# The full local gate: build, test, lint. Mirrors what tier-1 CI runs.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p simlint -- --deny-all"
cargo run -p simlint -q -- --deny-all

echo "==> all checks passed"

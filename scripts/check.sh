#!/bin/sh
# The full local gate: build, test, lint. Mirrors what tier-1 CI runs.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p simlint -- --deny-all"
cargo run -p simlint -q -- --deny-all

echo "==> hcapp trace smoke (Table-3 combo, JSONL validated)"
smoke=results/trace_smoke.jsonl
rm -f "$smoke"
cargo run --release -p hcapp-cli -q -- trace \
    --combo Hi-Hi --scheme hcapp --ms 2 --out "$smoke" > /dev/null
# The validator re-parses every line, checks the schema header and
# enforces time-ordering; then make sure all five event kinds fired.
cargo run --release -p hcapp-cli -q -- trace --check "$smoke" > /dev/null
for kind in retarget global_pid vr_slew domain_scale local_decision; do
    grep -q "\"kind\":\"$kind\"" "$smoke" \
        || { echo "missing $kind events in $smoke" >&2; exit 1; }
done
rm -f "$smoke"

echo "==> hcapp faults smoke (executor determinism + cap bound)"
cargo run --release -p hcapp-cli -q -- faults --seed 7 --check

echo "==> scaling bench smoke (results/BENCH_parallel.json)"
scripts/bench_smoke.sh

echo "==> all checks passed"

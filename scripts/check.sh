#!/bin/sh
# The full local gate: build, test, lint. Mirrors what tier-1 CI runs.
# Usage: scripts/check.sh           full gate (from anywhere inside the repo)
#        scripts/check.sh --fast    pre-commit variant: warnings-clean debug
#                                   build + simlint on files changed vs HEAD
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--fast" ]; then
    echo "==> cargo build (fast, -D warnings)"
    RUSTFLAGS="-D warnings" cargo build -q
    echo "==> cargo run -p simlint -- --deny-all --changed"
    cargo run -p simlint -q -- --deny-all --changed
    echo "==> fast checks passed"
    exit 0
fi

echo "==> cargo build --release (-D warnings)"
RUSTFLAGS="-D warnings" cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p simlint -- --deny-all"
cargo run -p simlint -q -- --deny-all

echo "==> hcapp sanitize smoke (permuted reply orders vs serial bytes)"
cargo run --release -p hcapp-cli -q -- sanitize \
    --combo Low-Low --ms 1 --orderings 8 > /dev/null

echo "==> hcapp trace smoke (Table-3 combo, JSONL validated)"
smoke=results/trace_smoke.jsonl
rm -f "$smoke"
cargo run --release -p hcapp-cli -q -- trace \
    --combo Hi-Hi --scheme hcapp --ms 2 --out "$smoke" > /dev/null
# The validator re-parses every line, checks the schema header and
# enforces time-ordering; then make sure all five event kinds fired.
cargo run --release -p hcapp-cli -q -- trace --check "$smoke" > /dev/null
for kind in retarget global_pid vr_slew domain_scale local_decision; do
    grep -q "\"kind\":\"$kind\"" "$smoke" \
        || { echo "missing $kind events in $smoke" >&2; exit 1; }
done
rm -f "$smoke"

echo "==> hcapp analyze smoke (report vs committed baseline + bounds)"
smoke=results/analyze_smoke.json
rm -f "$smoke"
cargo run --release -p hcapp-cli -q -- analyze \
    --combo Hi-Hi --scheme hcapp --ms 2 --retarget 1:70 \
    --out "$smoke" > /dev/null
# The run is fully deterministic, so the fresh report must match the
# committed baseline within a tight tolerance (re-baseline deliberately
# with the command in README.md's Observability section)...
cargo run --release -p hcapp-cli -q -- analyze \
    --diff results/REPORT_baseline.json --against "$smoke" \
    --tolerance 0.01 > /dev/null
# ...and satisfy the absolute control-quality bounds.
cargo run --release -p hcapp-cli -q -- analyze \
    --assert results/REPORT_checks.json --report "$smoke" > /dev/null
rm -f "$smoke"

echo "==> hcapp faults smoke (executor determinism + cap bound)"
cargo run --release -p hcapp-cli -q -- faults --seed 7 --check

echo "==> scaling bench smoke (executors + stepper-kernel {3,64} floors)"
# Fast variant of scripts/bench_smoke.sh: the kernel sweep runs only the
# 3- and 64-domain points and must clear the committed throughput floors
# in results/BENCH_thresholds.json (including kernel >= legacy-stepper
# headroom). The full 4-point sweep that refreshes the committed
# results/BENCH_kernel.json is the script's default mode.
HCAPP_BENCH_POINTS=3,64 scripts/bench_smoke.sh

echo "==> hcapp soak smoke (kill-and-resume vs uninterrupted oracle, tolerance 0)"
# A short chaos campaign: the run is killed twice at seeded quanta and
# resumed from hcapp.ckpt; outcome, stitched JSONL trace and replayed
# report must be byte-identical to the never-interrupted oracle, and the
# over-budget bound from the fault contract must still hold.
cargo run --release -p hcapp-cli -q -- soak \
    --combo Hi-Hi --ms 2 --kills 2 --every 64 --seed 7 \
    --dir results/soak_smoke > /dev/null
rmdir results/soak_smoke 2>/dev/null || true

echo "==> hcapp fuzz smoke (differential + metamorphic oracles, byte-stable)"
# A fixed-seed bounded corpus through all six differential legs plus the
# metamorphic invariants. Run twice: the campaign log itself must be
# byte-identical across invocations, so the gate covers determinism of the
# fuzzer as well as correctness of the executors.
fuzz_a=results/fuzz_smoke_a.log
fuzz_b=results/fuzz_smoke_b.log
rm -f "$fuzz_a" "$fuzz_b"
cargo run --release -p hcapp-cli -q -- fuzz --smoke > "$fuzz_a"
cargo run --release -p hcapp-cli -q -- fuzz --smoke > "$fuzz_b"
cmp "$fuzz_a" "$fuzz_b" \
    || { echo "fuzz smoke log is not byte-stable across invocations" >&2; exit 1; }
rm -f "$fuzz_a" "$fuzz_b"
# The self-test: plant a known executor divergence, require the oracle to
# catch it, shrink it, and reproduce it from the emitted hcapp.fuzzcase.
fuzz_case=results/fuzz_smoke_planted.fuzzcase
rm -f "$fuzz_case"
cargo run --release -p hcapp-cli -q -- fuzz \
    --plant pooled --out "$fuzz_case" > /dev/null
if cargo run --release -p hcapp-cli -q -- fuzz --replay "$fuzz_case" > /dev/null 2>&1; then
    echo "planted fuzzcase replay did not reproduce the failure" >&2
    exit 1
fi
rm -f "$fuzz_case"

echo "==> all checks passed"

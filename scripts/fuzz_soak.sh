#!/bin/sh
# Long-form fuzz soak: sweep many campaign seeds through the full
# differential + metamorphic oracle set with bigger corpora than the
# bounded `hcapp fuzz --smoke` gate in scripts/check.sh.
#
# Every campaign is a pure function of its seed, so a failure here is
# immediately reproducible with
#     hcapp fuzz --seed <seed> --cases <cases>
# and any caught divergence is shrunk to an hcapp.fuzzcase by the
# campaign itself (see `hcapp fuzz --replay`). Knobs (all optional):
#   HCAPP_FUZZ_ROUNDS   campaign seeds to sweep            (default 4)
#   HCAPP_FUZZ_CASES    cases per campaign                 (default 128)
#   HCAPP_FUZZ_SEED0    first campaign seed                (default 1)
set -eu
cd "$(dirname "$0")/.."

ROUNDS="${HCAPP_FUZZ_ROUNDS:-4}"
CASES="${HCAPP_FUZZ_CASES:-128}"
SEED0="${HCAPP_FUZZ_SEED0:-1}"

cargo build --release -q -p hcapp-cli
HCAPP=./target/release/hcapp

mkdir -p results/fuzz
fail=0
i=0
while [ "$i" -lt "$ROUNDS" ]; do
    seed=$((SEED0 + i))
    log="results/fuzz/soak-seed$seed.log"
    echo "==> fuzz campaign seed=$seed cases=$CASES"
    if "$HCAPP" fuzz --seed "$seed" --cases "$CASES" > "$log"; then
        tail -n 1 "$log"
    else
        echo "campaign seed=$seed FAILED — log: $log" >&2
        fail=1
    fi
    i=$((i + 1))
done

if [ "$fail" -ne 0 ]; then
    echo "fuzz soak FAILED" >&2
    exit 1
fi
echo "fuzz soak passed: $ROUNDS campaign(s) x $CASES case(s), zero divergences"

#!/bin/sh
# Chaos soak with REAL process death: spawn `hcapp soak --worker` children
# that checkpoint as they run, SIGKILL them mid-flight, resume from
# hcapp.ckpt, and diff the final stitched run against a never-interrupted
# oracle at tolerance zero (outcome digest, trace bytes, replayed report).
#
# This complements the in-process campaign (`hcapp soak`, also run by
# scripts/check.sh): there the kill point is a deterministic quantum; here
# the process dies wherever the signal lands, so the resume path is soaked
# against arbitrary interruption points. Knobs (all optional):
#   HCAPP_SOAK_MS      simulated milliseconds per run      (default 10)
#   HCAPP_SOAK_KILLS   SIGKILLed generations before letting one finish (3)
#   HCAPP_SOAK_SEED    scenario seed                       (default 11)
#   HCAPP_SOAK_PLAN    fault plan preset                   (default moderate)
#   HCAPP_SOAK_EVERY   checkpoint cadence in quanta        (default 64)
set -eu
cd "$(dirname "$0")/.."

MS="${HCAPP_SOAK_MS:-10}"
KILLS="${HCAPP_SOAK_KILLS:-3}"
SEED="${HCAPP_SOAK_SEED:-11}"
PLAN="${HCAPP_SOAK_PLAN:-moderate}"
EVERY="${HCAPP_SOAK_EVERY:-64}"

cargo build --release -q -p hcapp-cli
HCAPP=./target/release/hcapp

work=results/soak_sigkill
rm -rf "$work"
mkdir -p "$work/run" "$work/oracle"

common="--combo Hi-Hi --ms $MS --seed $SEED --plan $PLAN --every $EVERY --keep"

# Oracle: one uninterrupted worker in its own directory.
$HCAPP soak --worker $common --dir "$work/oracle" > "$work/oracle.out"
oracle_digest=$(sed -n 's/.*outcome=\([0-9a-f]*\).*/\1/p' "$work/oracle.out")
[ -n "$oracle_digest" ] || { echo "soak.sh: oracle worker printed no digest" >&2; exit 1; }

# Kill generations: each worker resumes from the previous one's checkpoint
# and is SIGKILLed mid-run. If a fast generation finishes before the signal
# lands, that is fine — the final comparison still gates the full contract.
gen=0
while [ "$gen" -lt "$KILLS" ]; do
    $HCAPP soak --worker $common --dir "$work/run" > "$work/gen$gen.out" 2>/dev/null &
    pid=$!
    # Let it get some checkpoints down, then kill it dead.
    sleep 0.2
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    gen=$((gen + 1))
done

# Final generation: run to completion.
$HCAPP soak --worker $common --dir "$work/run" > "$work/final.out"
final_digest=$(sed -n 's/.*outcome=\([0-9a-f]*\).*/\1/p' "$work/final.out")
[ -n "$final_digest" ] || { echo "soak.sh: final worker did not complete" >&2; cat "$work/final.out" >&2; exit 1; }

fail=0
if [ "$final_digest" != "$oracle_digest" ]; then
    echo "soak.sh: outcome digest diverged ($final_digest vs oracle $oracle_digest)" >&2
    fail=1
fi
if ! cmp -s "$work/run/hcapp.trace" "$work/oracle/hcapp.trace"; then
    echo "soak.sh: stitched trace differs from the oracle trace" >&2
    fail=1
fi
# The stitched trace must also be internally valid (no duplicated or
# missing seam quanta) and replay to the identical report.
$HCAPP trace --check "$work/run/hcapp.trace" > /dev/null
$HCAPP analyze --trace "$work/run/hcapp.trace" --out "$work/run.report" > /dev/null
$HCAPP analyze --trace "$work/oracle/hcapp.trace" --out "$work/oracle.report" > /dev/null
if ! cmp -s "$work/run.report" "$work/oracle.report"; then
    echo "soak.sh: replayed report differs from the oracle report" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "soak.sh: FAILED (artifacts kept in $work)" >&2
    exit 1
fi
echo "soak.sh: ok — $KILLS SIGKILLed generation(s), resumed run byte-identical to the oracle"
rm -rf "$work"

//! Umbrella crate for the HCAPP reproduction.
//!
//! Re-exports the workspace crates under one roof so the `examples/` and
//! `tests/` at the repository root can exercise the whole stack with a single
//! dependency. See `README.md` for the quickstart and `DESIGN.md` for the
//! system inventory.

pub use hcapp;
pub use hcapp_accel_sim as accel_sim;
pub use hcapp_cpu_sim as cpu_sim;
pub use hcapp_experiments as experiments;
pub use hcapp_faults as faults;
pub use hcapp_gpu_sim as gpu_sim;
pub use hcapp_metrics as metrics;
pub use hcapp_pdn as pdn;
pub use hcapp_power_model as power_model;
pub use hcapp_sim_core as sim_core;
pub use hcapp_workloads as workloads;

//! Cross-crate integration tests: the full stack, end to end.

use hcapp_repro::hcapp::coordinator::{Simulation, SoftwareConfig};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::software::ComponentKind;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::hcapp::testutil::{self, paper_config, paper_run as quick_run};
use hcapp_repro::sim_core::units::Volt;
use hcapp_repro::workloads::combos::combo_suite;

#[test]
fn energy_consistency_across_the_stack() {
    // avg power × duration must equal integrated energy for every scheme.
    for scheme in ControlScheme::all() {
        let out = quick_run("Mid-Mid", scheme, 3, 4);
        let expect = out.avg_power.value() * out.duration.as_secs_f64();
        assert!(
            (out.energy_j - expect).abs() < 1e-9 * expect.max(1.0),
            "{}: energy {} != avg*duration {}",
            scheme.name(),
            out.energy_j,
            expect
        );
    }
}

#[test]
fn power_bounded_by_physical_peak() {
    // No scheme can draw more than the package's theoretical peak at the
    // voltage ceiling.
    let combo = testutil::combo("Hi-Hi");
    let sys = SystemConfig::paper_system(combo, 5);
    let ceiling = sys.peak_power_at(Volt::new(sys.pid.out_max)).value();
    for scheme in ControlScheme::all() {
        let out = quick_run("Hi-Hi", scheme, 5, 4);
        for (_, max) in &out.windowed_max {
            assert!(
                max.value() <= ceiling + 1e-6,
                "{}: windowed max {} exceeds physical ceiling {}",
                scheme.name(),
                max,
                ceiling
            );
        }
    }
}

#[test]
fn serial_and_parallel_executors_agree_bitwise() {
    for combo in ["Burst-Burst", "Low-Hi"] {
        let (sys, run) = paper_config(testutil::combo(combo), ControlScheme::Hcapp, 9, 3);
        let serial = Simulation::new(sys.clone(), run.clone()).run();
        let parallel = Simulation::new(sys, run).run_parallel(3);
        assert_eq!(serial.avg_power, parallel.avg_power, "{combo}: avg power");
        assert_eq!(serial.energy_j, parallel.energy_j, "{combo}: energy");
        assert_eq!(serial.work, parallel.work, "{combo}: work");
        assert_eq!(
            serial.windowed_max, parallel.windowed_max,
            "{combo}: windowed max"
        );
    }
}

#[test]
fn hcapp_respects_fast_limit_on_every_combo() {
    let limit = PowerLimit::package_pin();
    for combo in combo_suite() {
        let out = quick_run(combo.name, ControlScheme::Hcapp, 11, 6);
        let ratio = out.max_ratio(&limit).unwrap();
        assert!(
            ratio <= 1.0,
            "{}: HCAPP max/limit {ratio} violates the package-pin limit",
            combo.name
        );
    }
}

#[test]
fn dynamic_control_beats_static_on_light_workloads() {
    // Low-Low leaves most of the budget unused at a fixed 0.95 V; HCAPP
    // should reclaim it as speedup (the power-shifting story).
    let fixed = quick_run("Low-Low", ControlScheme::fixed_baseline(), 13, 6);
    let hcapp = quick_run("Low-Low", ControlScheme::Hcapp, 13, 6);
    let s = hcapp.speedup_vs(&fixed);
    assert!(s > 1.15, "Low-Low speedup {s} too small");
    assert!(
        hcapp.avg_power.value() > fixed.avg_power.value() * 1.3,
        "HCAPP should use far more of the budget on Low-Low"
    );
}

#[test]
fn priorities_shift_work_without_breaking_the_cap() {
    let combo = testutil::combo("Mid-Mid");
    let limit = PowerLimit::package_pin();
    let base_cfg = || paper_config(combo, ControlScheme::Hcapp, 17, 6);
    let (sys, run) = base_cfg();
    let neutral = Simulation::new(sys, run).run();
    for kind in ComponentKind::ALL {
        let (sys, run) = base_cfg();
        let out = Simulation::new(sys, run.with_software(SoftwareConfig::StaticPriority(kind))).run();
        let b = neutral.work_for(kind).unwrap();
        let w = out.work_for(kind).unwrap();
        assert!(
            w > b,
            "{}: prioritized work {w} should exceed neutral {b}",
            kind.name()
        );
        let ratio = out.max_ratio(&limit).unwrap();
        assert!(
            ratio <= 1.0 + 1e-9,
            "{}: priority broke the cap ({ratio})",
            kind.name()
        );
    }
}

#[test]
fn seeds_change_details_not_shape() {
    let limit = PowerLimit::package_pin();
    let mut ppes = Vec::new();
    for seed in [1, 2, 3] {
        let out = quick_run("Hi-Hi", ControlScheme::Hcapp, seed, 6);
        assert!(out.max_ratio(&limit).unwrap() <= 1.0, "seed {seed} violates");
        ppes.push(out.ppe(limit.budget));
    }
    // Different seeds: different trajectories…
    assert!(ppes.windows(2).any(|w| w[0] != w[1]));
    // …but the same regulation band.
    for p in ppes {
        assert!((0.70..=0.90).contains(&p), "PPE {p} out of band");
    }
}

#[test]
fn fixed_voltage_power_reflects_workload_class() {
    // Low-class combos draw clearly less than Mid/Hi ones at the same
    // voltage; the Hi class peaks higher than the steady Mid class even
    // though its duty-cycled average lands nearby.
    let limit = PowerLimit::package_pin();
    let low = quick_run("Low-Low", ControlScheme::fixed_baseline(), 19, 6);
    let mid = quick_run("Mid-Mid", ControlScheme::fixed_baseline(), 19, 6);
    let hi = quick_run("Hi-Hi", ControlScheme::fixed_baseline(), 19, 6);
    assert!(low.avg_power.value() < mid.avg_power.value());
    assert!(low.avg_power.value() < hi.avg_power.value());
    assert!(
        hi.max_ratio(&limit).unwrap() > mid.max_ratio(&limit).unwrap(),
        "Hi-Hi should peak above Mid-Mid"
    );
}

//! Failure injection: dirty rails, degraded sensing, adversarial domains.
//!
//! §3.5's claim under test: adaptive clocking lets every node tolerate
//! "temporary voltage-related issues such as voltage glitches in the power
//! distribution system", and the global controller holds the package limit
//! through all of it.

use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::pdn::RippleSpec;
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::workloads::combos::combo_by_name;

fn run_with(
    ripple: Option<RippleSpec>,
    sensor_resolution: f64,
    sensor_delay_ticks: usize,
) -> hcapp_repro::hcapp::outcome::RunOutcome {
    let combo = combo_by_name("Hi-Hi").unwrap();
    let mut sys = SystemConfig::paper_system(combo, 23);
    sys.ripple = ripple;
    sys.sensor_resolution = sensor_resolution;
    sys.sensor_delay_ticks = sensor_delay_ticks;
    let limit = PowerLimit::package_pin();
    let run = RunConfig::new(
        SimDuration::from_millis(6),
        ControlScheme::Hcapp,
        limit.guardbanded_target(),
    );
    Simulation::new(sys, run).run()
}

#[test]
fn moderate_ripple_keeps_the_package_legal() {
    let limit = PowerLimit::package_pin();
    let clean = run_with(None, 0.1, 1);
    let dirty = run_with(Some(RippleSpec::moderate()), 0.1, 1);
    assert!(
        dirty.max_ratio(&limit).unwrap() <= 1.0,
        "moderate ripple broke the cap: {}",
        dirty.max_ratio(&limit).unwrap()
    );
    // Adaptive clocking absorbs the ripple: throughput within a few percent.
    let s = dirty.speedup_vs(&clean);
    assert!(
        (0.95..=1.05).contains(&s),
        "ripple changed throughput too much: {s}"
    );
}

#[test]
fn severe_ripple_degrades_gracefully() {
    let limit = PowerLimit::package_pin();
    let clean = run_with(None, 0.1, 1);
    let dirty = run_with(Some(RippleSpec::severe()), 0.1, 1);
    // Still no catastrophic violation (severe droop mostly *lowers* power;
    // allow a hair of slack for the sinusoidal upside).
    assert!(
        dirty.max_ratio(&limit).unwrap() <= 1.02,
        "severe ripple: {}",
        dirty.max_ratio(&limit).unwrap()
    );
    // Work degrades but bounded: droops slow the clock, never crash it.
    let s = dirty.speedup_vs(&clean);
    assert!(
        (0.85..=1.02).contains(&s),
        "severe ripple throughput ratio {s}"
    );
}

#[test]
fn coarse_power_sensor_still_regulates() {
    let limit = PowerLimit::package_pin();
    // A 2 W LSB is a terrible sensor; the integral term must still find the
    // target band.
    let coarse = run_with(None, 2.0, 1);
    assert!(coarse.max_ratio(&limit).unwrap() <= 1.0);
    let ppe = coarse.ppe(limit.budget);
    assert!((0.70..=0.90).contains(&ppe), "coarse-sensor PPE {ppe}");
}

#[test]
fn stale_power_sensor_still_regulates() {
    let limit = PowerLimit::package_pin();
    // 10 ticks = a full microsecond of sensing delay (one whole HCAPP
    // control period late).
    let stale = run_with(None, 0.1, 10);
    assert!(
        stale.max_ratio(&limit).unwrap() <= 1.02,
        "stale sensor: {}",
        stale.max_ratio(&limit).unwrap()
    );
    let ppe = stale.ppe(limit.budget);
    assert!(ppe > 0.70, "stale-sensor PPE {ppe}");
}

#[test]
fn adversarial_accelerator_cannot_break_the_cap() {
    let combo = combo_by_name("Burst-Burst").unwrap();
    let limit = PowerLimit::package_pin();
    let sys = SystemConfig::paper_system(combo, 23).with_adversarial_accel();
    let run = RunConfig::new(
        SimDuration::from_millis(6),
        ControlScheme::Hcapp,
        limit.guardbanded_target(),
    );
    let out = Simulation::new(sys, run).run();
    assert!(
        out.max_ratio(&limit).unwrap() <= 1.0,
        "adversarial accel broke the cap: {}",
        out.max_ratio(&limit).unwrap()
    );
}

#[test]
fn ripple_is_deterministic() {
    let a = run_with(Some(RippleSpec::severe()), 0.1, 1);
    let b = run_with(Some(RippleSpec::severe()), 0.1, 1);
    assert_eq!(a.avg_power, b.avg_power);
    assert_eq!(a.work, b.work);
}

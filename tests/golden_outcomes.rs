//! Golden-digest conformance corpus.
//!
//! Pins the byte-exact behaviour of every Table 3 CPU×GPU combo under all
//! four control schemes on the 3-domain paper package: the
//! `encode_outcome` byte stream, the JSONL trace line count, and the
//! `hcapp.report` produced by *replaying* that trace offline. The fixture
//! (`tests/golden_digests.txt`) was generated before the quantum-stepper
//! kernel landed, so any kernel-era change that moves a single output bit
//! fails here first.
//!
//! Re-bless deliberately (after verifying the change is intentional) with:
//!
//! ```text
//! HCAPP_BLESS=1 cargo test --test golden_outcomes
//! ```

use std::sync::{Arc, Mutex};

use hcapp_analyze::StreamAnalyzer;
use hcapp_repro::hcapp::cache::encode_outcome;
use hcapp_repro::hcapp::run_analyzed;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::testutil::{all_combos, digest_hex, paper_config};
use hcapp_telemetry::tracer::RingTracer;
use hcapp_telemetry::{jsonl, SharedTracer};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_digests.txt");
const SEED: u64 = 11;
const MS: u64 = 1;
/// Large enough that a 1 ms run can never wrap the ring (asserted below);
/// a wrapped ring would make the pinned line counts capacity-dependent.
const RING_CAP: usize = 1 << 18;

/// One corpus row: everything we pin for a (combo, scheme) cell.
fn golden_row(combo_name: &str, scheme: ControlScheme) -> String {
    let combo = hcapp_repro::hcapp::testutil::combo(combo_name);
    let (sys, run) = paper_config(combo, scheme, SEED, MS);
    let ring = Arc::new(Mutex::new(RingTracer::new(RING_CAP)));
    let run = run.with_tracer(ring.clone() as SharedTracer);
    let (outcome, live_report) = run_analyzed(sys, run, None);

    let events = ring
        .lock()
        .expect("invariant: tracer mutex never poisoned")
        .drain();
    assert!(
        events.len() < RING_CAP,
        "{combo_name}/{}: ring wrapped ({} events)",
        scheme.name(),
        events.len()
    );
    let trace = jsonl::export(&events, &[]);
    jsonl::validate(&trace).expect("exported trace must validate");

    // The report must be reproducible from the trace alone (offline replay
    // == live analysis), and that replayed report is what the corpus pins.
    let mut replay = StreamAnalyzer::new();
    replay.consume_jsonl(&trace).expect("replay failed");
    let replayed = replay.report().to_json();
    assert_eq!(
        replayed,
        live_report.to_json(),
        "{combo_name}/{}: offline replay diverged from live report",
        scheme.name()
    );

    format!(
        "{combo_name} {} outcome={} trace_lines={} report={}",
        scheme.name(),
        digest_hex(&encode_outcome(&outcome)),
        trace.lines().count(),
        digest_hex(&replayed),
    )
}

fn corpus() -> String {
    let mut out = String::from(
        "# hcapp golden digests v1 — seed 11, 1 ms, package-pin guardbanded target\n\
         # columns: combo scheme outcome=<fnv1a64> trace_lines=<n> report=<fnv1a64>\n\
         # re-bless: HCAPP_BLESS=1 cargo test --test golden_outcomes\n",
    );
    for combo in all_combos() {
        for scheme in ControlScheme::all() {
            out.push_str(&golden_row(combo.name, scheme));
            out.push('\n');
        }
    }
    out
}

#[test]
fn table3_digests_match_the_committed_fixture() {
    let fresh = corpus();
    if std::env::var_os("HCAPP_BLESS").is_some() {
        std::fs::write(FIXTURE, &fresh).expect("write fixture");
        eprintln!("blessed {FIXTURE}");
        return;
    }
    let committed = std::fs::read_to_string(FIXTURE)
        .expect("tests/golden_digests.txt missing — run with HCAPP_BLESS=1 to generate");
    let mut mismatches = Vec::new();
    for (want, got) in committed.lines().zip(fresh.lines()) {
        if want != got {
            mismatches.push(format!("  committed: {want}\n  fresh:     {got}"));
        }
    }
    if committed.lines().count() != fresh.lines().count() {
        mismatches.push(format!(
            "  line counts differ: committed {} vs fresh {}",
            committed.lines().count(),
            fresh.lines().count()
        ));
    }
    assert!(
        mismatches.is_empty(),
        "golden digests diverged — an output bit moved:\n{}",
        mismatches.join("\n")
    );
}

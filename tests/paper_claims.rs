//! Abbreviated checks of the paper's qualitative claims, through the full
//! stack. Full-scale (200 ms) numbers are recorded in EXPERIMENTS.md; these
//! run the same code paths at a few milliseconds so `cargo test` exercises
//! every claim.

use hcapp_repro::experiments::figures::{fig01, fig02, fig04, fig07, fig08, fig09};
use hcapp_repro::experiments::ExperimentConfig;
use hcapp_repro::hcapp::scheme::ControlScheme;

#[test]
fn figure1_claim_static_power_is_volatile() {
    let fig = fig01::compute(&ExperimentConfig::quick(8));
    // §1: "the peak power is 60% higher than the average power".
    assert!(fig.peak_ratio() > 1.25, "peak ratio {}", fig.peak_ratio());
    assert!(fig.implied_ppe() < 0.80, "implied PPE {}", fig.implied_ppe());
}

#[test]
fn figure2_claim_slow_windows_hide_fast_peaks() {
    let fig = fig02::compute(&ExperimentConfig::quick(8));
    let p20 = fig.w20us.max().unwrap();
    let p10m = fig.w10ms.max().unwrap();
    assert!(
        p20 > p10m * 1.15,
        "20us peak {p20} should clearly exceed 10ms peak {p10m}"
    );
}

#[test]
fn section_5_1_claim_only_fast_control_is_viable_at_the_pin_limit() {
    let sweep = fig04::sweep(&ExperimentConfig::quick(16));
    let worst = |s: ControlScheme| {
        sweep
            .scheme(s)
            .unwrap()
            .iter()
            .map(|(_, o)| o.max_ratio(&sweep.limit).unwrap())
            .fold(f64::NEG_INFINITY, f64::max)
    };
    assert!(worst(ControlScheme::Hcapp) <= 1.0);
    assert!(worst(ControlScheme::RaplLike) > 1.1);
}

#[test]
fn section_5_2_claims_ordering_of_speedup_and_ppe() {
    let sweep = fig07::sweep(&ExperimentConfig::quick(24));
    let (_, h_sp, r_sp, s_sp) = fig08::compute(&sweep);
    let (_, h_ppe, r_ppe, s_ppe, _fixed) = fig09::compute(&sweep);
    // Speedup: HCAPP > RAPL-like > SW-like.
    assert!(h_sp > r_sp && r_sp > s_sp, "speedups {h_sp} {r_sp} {s_sp}");
    // PPE: HCAPP > RAPL-like > SW-like.
    assert!(h_ppe > r_ppe && r_ppe > s_ppe, "PPEs {h_ppe} {r_ppe} {s_ppe}");
    // HCAPP beats RAPL-like overall (abstract: 7%).
    assert!(h_sp / r_sp > 1.0);
}

//! Property-based tests across the full stack.
//!
//! Compiled only with `--features proptest` so the default `cargo test -q`
//! stays lean; the suite runs against the local proptest shim
//! (`crates/proptest-shim`), so no registry access is needed either way.
#![cfg(feature = "proptest")]

use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::hcapp::testutil::all_combos;
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::sim_core::units::{Volt, Watt};
use hcapp_repro::workloads::combos::combo_suite;
use proptest::prelude::*;

fn run_once(combo_idx: usize, seed: u64, target_w: f64, scheme: ControlScheme) -> hcapp_repro::hcapp::outcome::RunOutcome {
    let combo = all_combos()[combo_idx % 8];
    let sys = SystemConfig::paper_system(combo, seed);
    let run = RunConfig::new(
        SimDuration::from_millis(1),
        scheme,
        Watt::new(target_w),
    );
    Simulation::new(sys, run).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any combo/seed/target, the simulation produces physical results:
    /// positive finite power bounded by the package ceiling, non-negative
    /// work for every domain.
    #[test]
    fn runs_are_physical(combo in 0usize..8, seed in 0u64..1_000, target in 40.0f64..120.0) {
        let out = run_once(combo, seed, target, ControlScheme::Hcapp);
        prop_assert!(out.avg_power.value() > 0.0);
        prop_assert!(out.avg_power.is_finite());
        let ceiling = SystemConfig::paper_system(combo_suite()[combo % 8], seed)
            .peak_power_at(Volt::new(1.3))
            .value();
        prop_assert!(out.avg_power.value() <= ceiling);
        for (_, w) in &out.work {
            prop_assert!(*w >= 0.0 && w.is_finite());
        }
    }

    /// Determinism holds for arbitrary seeds and targets.
    #[test]
    fn replays_are_identical(combo in 0usize..8, seed in 0u64..1_000, target in 40.0f64..120.0) {
        let a = run_once(combo, seed, target, ControlScheme::Hcapp);
        let b = run_once(combo, seed, target, ControlScheme::Hcapp);
        prop_assert_eq!(a.avg_power, b.avg_power);
        prop_assert_eq!(a.work, b.work);
    }

    /// A higher power target never reduces the regulated average power
    /// (same workload, same seed) — the controller is monotone in its
    /// setpoint.
    #[test]
    fn target_monotonicity(combo in 0usize..8, seed in 0u64..100) {
        let lo = run_once(combo, seed, 60.0, ControlScheme::Hcapp);
        let hi = run_once(combo, seed, 95.0, ControlScheme::Hcapp);
        prop_assert!(
            hi.avg_power.value() >= lo.avg_power.value() - 1.5,
            "target 95 W gave {} but 60 W gave {}",
            hi.avg_power, lo.avg_power
        );
    }

    /// The windowed max never falls below the run average for any window
    /// (max of a window-average ≥ global average, once a window fits).
    #[test]
    fn windowed_max_dominates_average(combo in 0usize..8, seed in 0u64..100) {
        let out = run_once(combo, seed, 84.0, ControlScheme::fixed_baseline());
        for (w, max) in &out.windowed_max {
            if *w <= out.duration {
                prop_assert!(
                    max.value() >= out.avg_power.value() - 1e-6,
                    "window {w}: max {max} below average {}",
                    out.avg_power
                );
            }
        }
    }

    /// PPE is the average power over the budget — consistent across any
    /// budget value.
    #[test]
    fn ppe_definition_consistent(combo in 0usize..8, budget in 50.0f64..150.0) {
        let out = run_once(combo, 7, 84.0, ControlScheme::Hcapp);
        let limit = PowerLimit::new(Watt::new(budget), SimDuration::from_micros(20));
        let ppe = out.ppe(limit.budget);
        prop_assert!((ppe * budget - out.avg_power.value()).abs() < 1e-9);
    }

    /// Metamorphic (Eq. 1–2/4): PPE normalizes by the provisioned power,
    /// so scaling the provisioned budget by a power of two must scale PPE
    /// by exactly its inverse — bit-exact, because power-of-two float ops
    /// touch only the exponent.
    #[test]
    fn ppe_invariant_under_power_unit_scaling(
        combo in 0usize..8, seed in 0u64..100, k_exp in 1u32..4, budget in 50.0f64..150.0
    ) {
        let out = run_once(combo, seed, 84.28, ControlScheme::Hcapp);
        let k = f64::from(1u32 << k_exp);
        let reference = out.ppe(Watt::new(budget));
        let rescaled = out.ppe(Watt::new(budget * k)) * k;
        let _ = k;
        prop_assert_eq!(reference.to_bits(), rescaled.to_bits());
    }

    /// Metamorphic (§5.3): the domain priority register is last-write-wins,
    /// so permuting every write but the final one leaves the domain voltage
    /// bit-identical at any global voltage.
    #[test]
    fn priority_register_is_last_write_wins(
        prefix in proptest::collection::vec(0.5f64..1.5, 1..6),
        last in 0.5f64..1.5,
        vg in 0.7f64..1.3
    ) {
        let volts_of = |writes: &[f64]| {
            let mut dc = hcapp_repro::hcapp::DomainController::scaled(
                1.0, Volt::new(0.7), Volt::new(1.3));
            for &p in writes {
                dc.set_priority(p);
            }
            dc.domain_voltage(Volt::new(vg)).value().to_bits()
        };
        let mut fwd = prefix.clone();
        fwd.push(last);
        let mut rev: Vec<f64> = prefix.iter().rev().copied().collect();
        rev.push(last);
        prop_assert_eq!(volts_of(&fwd), volts_of(&rev));
    }

    /// Metamorphic (§5.2): a dynamic retarget takes effect at the next
    /// control-quantum boundary, so ceiling an off-boundary retarget time
    /// onto that boundary cannot change the outcome — bit for bit.
    #[test]
    fn retarget_boundary_shift_equivariance(
        combo in 0usize..8, seed in 0u64..100, at_us in 1u64..900, w in 50.0f64..110.0
    ) {
        use hcapp_repro::hcapp::cache::encode_outcome;
        use hcapp_repro::sim_core::time::SimTime;
        let scheme = ControlScheme::Hcapp;
        let p_ns = scheme.control_period().expect("hcapp is dynamic").as_nanos();
        let at_ns = at_us * 1_000 + 137; // deliberately off the boundary grid
        let shifted_ns = at_ns.div_ceil(p_ns) * p_ns;
        prop_assert!(at_ns != shifted_ns);
        let run_with = |ns: u64| {
            let sys = SystemConfig::paper_system(combo_suite()[combo % 8], seed);
            let run = RunConfig::new(
                SimDuration::from_millis(1), scheme, Watt::new(84.28))
                .with_retarget(SimTime::from_nanos(ns), Watt::new(w));
            encode_outcome(&Simulation::new(sys, run).run())
        };
        prop_assert_eq!(run_with(at_ns), run_with(shifted_ns));
    }

    /// Tentpole equivalence (DESIGN §6j): for arbitrary valid packages
    /// (1–64 domains), executor batch bounds, an optional mid-run retarget
    /// and an optional light fault plan, the allocation-free kernel
    /// stepper and the pre-kernel legacy stepper produce byte-identical
    /// encoded outcomes on the serial executor.
    #[test]
    fn stepper_paths_are_byte_identical(
        combo in 0usize..8,
        seed in 0u64..1_000,
        nc in 0usize..22,
        ng in 0usize..22,
        ns in 0usize..21,
        batch_idx in 0usize..3,
        fixed in 0u8..2,
        retarget in 0u8..2,
        faults in 0u8..2,
    ) {
        use hcapp_repro::faults::FaultPlan;
        use hcapp_repro::hcapp::cache::encode_outcome;
        use hcapp_repro::hcapp::StepperPath;
        use hcapp_repro::sim_core::time::SimTime;
        // Keep the package valid: an all-zero draw becomes the smallest one.
        let (nc, ng, ns) = if nc + ng + ns == 0 { (1, 0, 0) } else { (nc, ng, ns) };
        let batch = [1usize, 3, 32][batch_idx];
        let scheme = if fixed == 1 {
            ControlScheme::fixed_baseline()
        } else {
            ControlScheme::Hcapp
        };
        let run_with = |stepper: StepperPath| {
            let sys = SystemConfig::scaled_system(
                combo_suite()[combo % 8], nc, ng, ns, seed,
            ).expect("nonzero by construction");
            let mut run = RunConfig::new(
                SimDuration::from_micros(200), scheme, Watt::new(84.28))
                .with_batch_quanta(batch)
                .with_stepper(stepper);
            if retarget == 1 {
                run = run.with_retarget(
                    SimTime::from_nanos(80_000), Watt::new(70.0));
            }
            if faults == 1 {
                run = run.with_faults(FaultPlan::light(seed));
            }
            encode_outcome(&Simulation::new(sys, run).run())
        };
        prop_assert_eq!(
            run_with(StepperPath::Kernel),
            run_with(StepperPath::Legacy)
        );
    }

    /// `scaled_system` determinism: the same seed and package shape give
    /// the same outcome digest whichever executor shape runs it (serial,
    /// 2-worker pool, 3-worker pool).
    #[test]
    fn scaled_system_digest_is_executor_invariant(
        combo in 0usize..8,
        seed in 0u64..1_000,
        nc in 1usize..8,
        ng in 0usize..8,
        ns in 0usize..8,
    ) {
        use hcapp_repro::hcapp::resume::outcome_digest;
        let build = || {
            let sys = SystemConfig::scaled_system(
                combo_suite()[combo % 8], nc, ng, ns, seed,
            ).expect("nc >= 1");
            let run = RunConfig::new(
                SimDuration::from_micros(200),
                ControlScheme::Hcapp,
                Watt::new(84.28),
            );
            Simulation::new(sys, run)
        };
        let serial = outcome_digest(&build().run());
        let pooled2 = outcome_digest(&build().run_parallel(2));
        let pooled3 = outcome_digest(&build().run_parallel(3));
        prop_assert_eq!(&serial, &pooled2);
        prop_assert_eq!(&serial, &pooled3);
    }
}

//! Property-based tests across the full stack.
//!
//! Compiled only with `--features proptest` so the default `cargo test -q`
//! stays lean; the suite runs against the local proptest shim
//! (`crates/proptest-shim`), so no registry access is needed either way.
#![cfg(feature = "proptest")]

use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::sim_core::units::{Volt, Watt};
use hcapp_repro::workloads::combos::combo_suite;
use proptest::prelude::*;

fn run_once(combo_idx: usize, seed: u64, target_w: f64, scheme: ControlScheme) -> hcapp_repro::hcapp::outcome::RunOutcome {
    let combo = combo_suite()[combo_idx % 8];
    let sys = SystemConfig::paper_system(combo, seed);
    let run = RunConfig::new(
        SimDuration::from_millis(1),
        scheme,
        Watt::new(target_w),
    );
    Simulation::new(sys, run).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any combo/seed/target, the simulation produces physical results:
    /// positive finite power bounded by the package ceiling, non-negative
    /// work for every domain.
    #[test]
    fn runs_are_physical(combo in 0usize..8, seed in 0u64..1_000, target in 40.0f64..120.0) {
        let out = run_once(combo, seed, target, ControlScheme::Hcapp);
        prop_assert!(out.avg_power.value() > 0.0);
        prop_assert!(out.avg_power.is_finite());
        let ceiling = SystemConfig::paper_system(combo_suite()[combo % 8], seed)
            .peak_power_at(Volt::new(1.3))
            .value();
        prop_assert!(out.avg_power.value() <= ceiling);
        for (_, w) in &out.work {
            prop_assert!(*w >= 0.0 && w.is_finite());
        }
    }

    /// Determinism holds for arbitrary seeds and targets.
    #[test]
    fn replays_are_identical(combo in 0usize..8, seed in 0u64..1_000, target in 40.0f64..120.0) {
        let a = run_once(combo, seed, target, ControlScheme::Hcapp);
        let b = run_once(combo, seed, target, ControlScheme::Hcapp);
        prop_assert_eq!(a.avg_power, b.avg_power);
        prop_assert_eq!(a.work, b.work);
    }

    /// A higher power target never reduces the regulated average power
    /// (same workload, same seed) — the controller is monotone in its
    /// setpoint.
    #[test]
    fn target_monotonicity(combo in 0usize..8, seed in 0u64..100) {
        let lo = run_once(combo, seed, 60.0, ControlScheme::Hcapp);
        let hi = run_once(combo, seed, 95.0, ControlScheme::Hcapp);
        prop_assert!(
            hi.avg_power.value() >= lo.avg_power.value() - 1.5,
            "target 95 W gave {} but 60 W gave {}",
            hi.avg_power, lo.avg_power
        );
    }

    /// The windowed max never falls below the run average for any window
    /// (max of a window-average ≥ global average, once a window fits).
    #[test]
    fn windowed_max_dominates_average(combo in 0usize..8, seed in 0u64..100) {
        let out = run_once(combo, seed, 84.0, ControlScheme::fixed_baseline());
        for (w, max) in &out.windowed_max {
            if *w <= out.duration {
                prop_assert!(
                    max.value() >= out.avg_power.value() - 1e-6,
                    "window {w}: max {max} below average {}",
                    out.avg_power
                );
            }
        }
    }

    /// PPE is the average power over the budget — consistent across any
    /// budget value.
    #[test]
    fn ppe_definition_consistent(combo in 0usize..8, budget in 50.0f64..150.0) {
        let out = run_once(combo, 7, 84.0, ControlScheme::Hcapp);
        let limit = PowerLimit::new(Watt::new(budget), SimDuration::from_micros(20));
        let ppe = out.ppe(limit.budget);
        prop_assert!((ppe * budget - out.avg_power.value()).abs() < 1e-9);
    }
}

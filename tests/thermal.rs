//! Integration tests for the §3.3 thermal extension.
//!
//! The paper assumes the power cap sits below the TDP so thermal effects
//! never trigger; these tests check both that assumption (guards stay idle
//! at the paper's operating point) and the extension (guards engage and
//! contain temperature when the assumption is violated).

use hcapp_repro::hcapp::controller::thermal_guard::ThermalConfig;
use hcapp_repro::hcapp::coordinator::{RunConfig, Simulation};
use hcapp_repro::hcapp::limits::PowerLimit;
use hcapp_repro::hcapp::scheme::ControlScheme;
use hcapp_repro::hcapp::system::SystemConfig;
use hcapp_repro::sim_core::time::SimDuration;
use hcapp_repro::workloads::combos::combo_by_name;

fn run(thermal: Option<ThermalConfig>, scheme: ControlScheme) -> hcapp_repro::hcapp::outcome::RunOutcome {
    let combo = combo_by_name("Hi-Hi").unwrap();
    let mut sys = SystemConfig::paper_system(combo, 31);
    sys.thermal = thermal;
    let limit = PowerLimit::package_pin();
    let runc = RunConfig::new(
        SimDuration::from_millis(6),
        scheme,
        limit.guardbanded_target(),
    );
    Simulation::new(sys, runc).run()
}

#[test]
fn guards_stay_idle_below_tdp() {
    // The paper's operating point: with a sane package (85 °C limit,
    // 1.2 K/W), HCAPP's ~27 W per chiplet stays well below the limit, so
    // the guarded run is identical in spirit to the unguarded one.
    let unguarded = run(None, ControlScheme::Hcapp);
    let guarded = run(Some(ThermalConfig::default_package()), ControlScheme::Hcapp);
    let ratio = guarded.speedup_vs(&unguarded);
    assert!(
        (0.999..=1.001).contains(&ratio),
        "idle guard changed throughput: {ratio}"
    );
    assert_eq!(guarded.avg_power, unguarded.avg_power);
}

#[test]
fn guards_throttle_an_underprovisioned_package() {
    // Violate the paper's assumption: a hot, badly-cooled package (limit
    // only 12 K above ambient, 3 K/W). The guard must engage and cut power.
    let hot = ThermalConfig {
        r_th: 3.0,
        c_th: 2e-4, // fast thermal node so a 6 ms run reaches steady state
        t_ambient: 320.0,
        t_limit: 332.0,
        derate_per_kelvin: 0.05,
        derate_floor: 0.70,
    };
    let unguarded = run(None, ControlScheme::Hcapp);
    let guarded = run(Some(hot), ControlScheme::Hcapp);
    assert!(
        guarded.avg_power.value() < unguarded.avg_power.value() * 0.9,
        "thermal throttle should cut power: {} vs {}",
        guarded.avg_power,
        unguarded.avg_power
    );
    // And the throttled package is slower — heat is a real constraint.
    assert!(guarded.speedup_vs(&unguarded) < 1.0);
}

#[test]
fn thermal_throttle_never_breaks_the_power_cap() {
    let hot = ThermalConfig {
        r_th: 3.0,
        c_th: 2e-4,
        t_ambient: 320.0,
        t_limit: 332.0,
        derate_per_kelvin: 0.05,
        derate_floor: 0.70,
    };
    let limit = PowerLimit::package_pin();
    let out = run(Some(hot), ControlScheme::Hcapp);
    assert!(out.max_ratio(&limit).unwrap() <= 1.0);
}
